//! An LRU cache for TDPM task projections, keyed by query content.
//!
//! Projecting a task (Algorithm 3, Eqs. 22–23) runs a fixed-point iteration
//! per query; for a serving engine the same task text often arrives many
//! times between retrains. The projection depends only on the fitted model
//! parameters and the bag-of-words, so a `(fit epoch, content hash)` pair
//! fully determines it — the cache clears itself whenever it observes a new
//! epoch, and entries never go stale within one.

use crowd_core::TaskProjection;
use crowd_text::BagOfWords;
use std::collections::HashMap;

/// Default capacity of the engine's projection cache.
pub(crate) const DEFAULT_PROJECTION_CACHE_CAPACITY: usize = 256;

/// FNV-1a over the bag's `(term index, count)` entries.
///
/// [`BagOfWords::iter`] yields terms in sorted order, so equal bags hash
/// equally regardless of construction order. A 64-bit collision would serve
/// the wrong projection; entries therefore keep the bag itself and verify
/// equality on every hit (see [`ProjectionCache::get_or_insert_with`]).
pub(crate) fn bow_key(bow: &BagOfWords) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for (t, c) in bow.iter() {
        for b in (t.index() as u64)
            .to_le_bytes()
            .into_iter()
            .chain((c as u64).to_le_bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

#[derive(Debug)]
struct Entry {
    last_used: u64,
    bow: BagOfWords,
    projection: TaskProjection,
}

/// A small LRU map `content hash → TaskProjection`, valid for one fit epoch.
#[derive(Debug)]
pub(crate) struct ProjectionCache {
    capacity: usize,
    /// Fit epoch the cached projections were computed under.
    epoch: u64,
    /// Monotonic access clock for LRU eviction.
    tick: u64,
    map: HashMap<u64, Entry>,
}

impl ProjectionCache {
    pub(crate) fn new(capacity: usize) -> Self {
        ProjectionCache {
            capacity: capacity.max(1),
            epoch: 0,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Number of live entries (for tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Looks up the projection for `bow` under `epoch`, computing and
    /// caching it with `project` on a miss. Returns the projection and
    /// whether it was a hit. Seeing a different epoch than the cached one
    /// drops every entry first — projections are only comparable within a
    /// single fit.
    pub(crate) fn get_or_insert_with(
        &mut self,
        epoch: u64,
        bow: &BagOfWords,
        project: impl FnOnce() -> TaskProjection,
    ) -> (&TaskProjection, bool) {
        if self.epoch != epoch {
            self.epoch = epoch;
            self.map.clear();
        }
        self.tick += 1;
        let key = bow_key(bow);
        // Hash hit still verifies the bag to rule out 64-bit collisions.
        let hit = self.map.get(&key).is_some_and(|e| &e.bow == bow);
        if !hit && self.map.len() >= self.capacity {
            // O(capacity) eviction of the least-recently-used entry;
            // capacity is small enough that a heap isn't worth it.
            if let Some(&lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&lru);
            }
        }
        // The entry API covers all three cases without a fallible re-lookup:
        // verified hit (reuse), hash collision (overwrite), plain miss
        // (insert fresh).
        let entry = match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if !hit {
                    o.insert(Entry {
                        last_used: 0,
                        bow: bow.clone(),
                        projection: project(),
                    });
                }
                o.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(v) => v.insert(Entry {
                last_used: 0,
                bow: bow.clone(),
                projection: project(),
            }),
        };
        entry.last_used = self.tick;
        (&entry.projection, hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_math::Vector;
    use crowd_store::CrowdDb;
    use crowd_text::tokenize_filtered;

    fn bag(db: &mut CrowdDb, text: &str) -> BagOfWords {
        BagOfWords::from_tokens(&tokenize_filtered(text), db.vocab_mut())
    }

    fn projection(tag: f64) -> TaskProjection {
        TaskProjection {
            lambda: Vector::from(vec![tag, 1.0 - tag]),
            nu2: Vector::from(vec![0.1, 0.1]),
            num_tokens: 2.0,
        }
    }

    #[test]
    fn equal_bags_hash_equal_distinct_bags_rarely_collide() {
        let mut db = CrowdDb::new();
        let a = bag(&mut db, "btree page split");
        let b = bag(&mut db, "split page btree btree page split");
        assert_ne!(bow_key(&a), bow_key(&b), "counts differ");
        let a2 = bag(&mut db, "split btree page");
        assert_eq!(bow_key(&a), bow_key(&a2), "order-independent");
        assert_ne!(bow_key(&a), bow_key(&bag(&mut db, "gaussian prior")));
    }

    #[test]
    fn second_lookup_hits_and_epoch_change_clears() {
        let mut db = CrowdDb::new();
        let bow = bag(&mut db, "btree page");
        let mut cache = ProjectionCache::new(4);
        let (_, hit) = cache.get_or_insert_with(1, &bow, || projection(0.3));
        assert!(!hit);
        let (p, hit) = cache.get_or_insert_with(1, &bow, || panic!("must hit"));
        assert!(hit);
        assert_eq!(p.lambda.as_slice()[0], 0.3);
        // A retrain bumps the epoch: everything is recomputed.
        let (p, hit) = cache.get_or_insert_with(2, &bow, || projection(0.9));
        assert!(!hit);
        assert_eq!(p.lambda.as_slice()[0], 0.9);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let mut db = CrowdDb::new();
        let bows: Vec<BagOfWords> = ["alpha", "beta", "gamma"]
            .iter()
            .map(|t| bag(&mut db, t))
            .collect();
        let mut cache = ProjectionCache::new(2);
        cache.get_or_insert_with(1, &bows[0], || projection(0.0));
        cache.get_or_insert_with(1, &bows[1], || projection(0.1));
        // Touch bows[0] so bows[1] is the LRU, then overflow.
        assert!(cache.get_or_insert_with(1, &bows[0], || unreachable!()).1);
        cache.get_or_insert_with(1, &bows[2], || projection(0.2));
        assert_eq!(cache.len(), 2);
        assert!(cache.get_or_insert_with(1, &bows[0], || projection(0.0)).1);
        assert!(!cache.get_or_insert_with(1, &bows[1], || projection(0.1)).1);
    }
}
