//! Logical plans for the crowd-query language.
//!
//! Every statement is *compiled* into a [`LogicalPlan`] — a short sequence
//! of typed [`PlanNode`]s connected by [`VarId`] slots (mirroring toasty's
//! `engine/plan` layout) — and then walked by the executor
//! (`crate::exec`). The split gives every cross-cutting concern a place to
//! hang: per-node metrics land in the executor, the projection-cache
//! decision is a compile-time plan property, batched `SELECT` sweeps fuse
//! into one plan, and `EXPLAIN` is nothing more than rendering the plan
//! instead of executing it.
//!
//! A `SELECT WORKERS` statement lowers to the canonical pipeline
//!
//! ```text
//! v0 <- Scan workers filter=all retry=transient<=3
//! v1 <- Bind backend=tdpm lazy_fit=false
//! v2 <- Project[v1] cache=projection texts=['btree split']
//! v3 <- Score[v2, v0] backend=tdpm k=2 guard=deadline,cancel,budget precision=f64 pool=persistent
//! v4 <- TopK[v3] k=2 on_interrupt=error|partial
//! v5 <- Merge[v4]
//! ```
//!
//! where `Scan` materializes the candidate pool, `Bind` resolves (and, for
//! lazily fittable backends, fits) the serving snapshot, `Project` turns
//! task text into bags of words and — for TDPM — Algorithm-3 projections
//! through the projection cache, `Score` ranks candidates per query (the
//! compiler pushes the `TopK` limit down into `Score` so the executor can
//! drive the fused rank-and-truncate kernels of
//! [`crowd_core::TdpmModel::select_top_k`]), `TopK` truncates, and `Merge`
//! decorates the rankings with worker handles in query order. Mutations,
//! `TRAIN MODEL`, `SHOW` and `EXPLAIN` lower to the single-node plans
//! [`PlanNode::Mutate`], [`PlanNode::Fit`], [`PlanNode::Inspect`] and
//! [`PlanNode::Explain`].

mod compile;

pub use compile::{compile, compile_select_batch, compile_select_batch_with, compile_with};

use crate::ast::{BackendName, ShowTarget};
use crowd_select::DbMutation;
use crowd_store::{TaskId, WorkerId};
use std::fmt;

/// A slot connecting plan nodes: each node writes its result into its `out`
/// slot and reads its inputs from the slots of upstream nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub usize);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The compiler's projection-cache decision for a [`PlanNode::Project`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDecision {
    /// Projections flow through the engine's LRU projection cache (the
    /// TDPM path; hits and misses are counted at this node).
    Projection,
    /// The backend has no task projection — queries stay plain bags of
    /// words and never touch the cache.
    Bypass,
}

impl fmt::Display for CacheDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CacheDecision::Projection => "projection",
            CacheDecision::Bypass => "bypass",
        })
    }
}

/// One storage mutation, as carried by a [`PlanNode::Mutate`].
///
/// Each variant knows which [`DbMutation`] class it is
/// ([`MutationOp::invalidates`]), so the executor applies the write and the
/// snapshot invalidation from one value — adding a mutation statement means
/// adding one variant here plus one arm in the executor's dispatch, not a
/// forwarding method per storage flavour.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationOp {
    /// `INSERT WORKER 'handle'`
    InsertWorker {
        /// Display handle.
        handle: String,
    },
    /// `INSERT TASK 'text'`
    InsertTask {
        /// Task text.
        text: String,
    },
    /// `ASSIGN WORKER w TO TASK t`
    Assign {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
    },
    /// `FEEDBACK WORKER w ON TASK t SCORE s`
    Feedback {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
        /// The score `s_ij`.
        score: f64,
    },
    /// `ANSWER WORKER w ON TASK t TEXT 'answer'`
    Answer {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
        /// Answer text.
        text: String,
    },
}

impl MutationOp {
    /// The invalidation class this write belongs to (what the engine hands
    /// to [`crowd_select::SelectorBackend::invalidated_by`] afterwards).
    pub fn invalidates(&self) -> DbMutation {
        match self {
            MutationOp::InsertWorker { .. } => DbMutation::WorkerAdded,
            MutationOp::InsertTask { .. } => DbMutation::TaskAdded,
            MutationOp::Assign { .. } => DbMutation::Assigned,
            MutationOp::Feedback { .. } => DbMutation::Feedback,
            MutationOp::Answer { .. } => DbMutation::Answer,
        }
    }
}

impl fmt::Display for MutationOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationOp::InsertWorker { handle } => {
                write!(f, "op=insert-worker handle={}", quote(handle))
            }
            MutationOp::InsertTask { text } => write!(f, "op=insert-task text={}", quote(text)),
            MutationOp::Assign { worker, task } => {
                write!(f, "op=assign worker={worker} task={task}")
            }
            MutationOp::Feedback {
                worker,
                task,
                score,
            } => write!(f, "op=feedback worker={worker} task={task} score={score}"),
            MutationOp::Answer { worker, task, text } => {
                write!(
                    f,
                    "op=answer worker={worker} task={task} text={}",
                    quote(text)
                )
            }
        }
    }
}

/// One typed node of a [`LogicalPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Materializes the candidate worker pool from storage, honoring the
    /// optional `WHERE GROUP >= n` filter. Errors when the pool is empty.
    Scan {
        /// Minimum resolved-task count per candidate, if filtered.
        min_group: Option<usize>,
        /// Output slot: the candidate pool.
        out: VarId,
    },
    /// Resolves the serving snapshot for a backend, fitting it on demand if
    /// the backend allows lazy fits; errors for explicit-fit backends
    /// (TDPM) with no trained model.
    Bind {
        /// The backend to bind.
        backend: BackendName,
        /// Whether the registry said the backend may be fitted lazily
        /// (`None` when the backend was unknown at compile time — the
        /// executor re-resolves and reports the full error).
        lazy_fit: Option<bool>,
        /// Output slot: a binding marker (the snapshot itself lives in
        /// engine state).
        out: VarId,
    },
    /// Turns task texts into bags of words over the stored vocabulary and —
    /// when the bound snapshot is a TDPM model — into Algorithm-3
    /// projections through the projection cache (cache hits/misses are
    /// counted here).
    Project {
        /// Query task texts, in statement order.
        texts: Vec<String>,
        /// The compiler's cache expectation (rendered in `EXPLAIN`; the
        /// executor follows the bound snapshot's actual type).
        cache: CacheDecision,
        /// Input slot: the backend binding.
        binding: VarId,
        /// Output slot: one prepared query per text.
        out: VarId,
    },
    /// Scores every candidate for every prepared query through the bound
    /// snapshot. The `TopK` limit is pushed down at compile time so the
    /// executor can run the fused rank-and-truncate kernels (dense batch
    /// kernels for TDPM, [`crowd_select::CrowdSelector::select_batch`] for
    /// everything else) — bit-identical to scoring everything and
    /// truncating afterwards, without the full sort.
    Score {
        /// The backend serving this plan.
        backend: BackendName,
        /// Pushed-down top-k limit.
        k: usize,
        /// Serving precision (engine policy at compile time). Only the
        /// TDPM dense kernels have an f32 mirror; baselines serve in f64
        /// regardless, and the executor follows the bound snapshot's type.
        precision: crowd_core::Precision,
        /// Input slot: prepared queries.
        queries: VarId,
        /// Input slot: candidate pool.
        candidates: VarId,
        /// Output slot: one ranking per query.
        out: VarId,
    },
    /// Truncates each ranking to `k` (a no-op after limit pushdown; kept as
    /// the explicit logical boundary).
    TopK {
        /// Top-k limit.
        k: usize,
        /// Input slot: rankings.
        input: VarId,
        /// Output slot: truncated rankings.
        out: VarId,
    },
    /// Decorates rankings with worker handles, preserving query order, and
    /// emits one result table per query.
    Merge {
        /// Input slot: truncated rankings.
        input: VarId,
        /// Output slot: result tables.
        out: VarId,
    },
    /// Applies one storage mutation and invalidates dependent snapshots.
    Mutate {
        /// The write to apply.
        op: MutationOp,
        /// Output slot: the statement acknowledgement.
        out: VarId,
    },
    /// Explicitly fits a backend (`TRAIN MODEL`).
    Fit {
        /// The backend to fit.
        backend: BackendName,
        /// Latent category count.
        categories: usize,
        /// Output slot: the training report.
        out: VarId,
    },
    /// Read-only inspection (`SHOW …`).
    Inspect {
        /// What to show.
        target: ShowTarget,
        /// Output slot: the report.
        out: VarId,
    },
    /// Renders a sub-plan instead of executing it (`EXPLAIN …`).
    Explain {
        /// The compiled plan of the inner statement.
        plan: Box<LogicalPlan>,
        /// Output slot: the rendered plan text.
        out: VarId,
    },
}

impl PlanNode {
    /// Short lowercase node kind, used as the
    /// `query/plan_node_seconds_<kind>` metric suffix.
    pub fn kind(&self) -> &'static str {
        match self {
            PlanNode::Scan { .. } => "scan",
            PlanNode::Bind { .. } => "bind",
            PlanNode::Project { .. } => "project",
            PlanNode::Score { .. } => "score",
            PlanNode::TopK { .. } => "topk",
            PlanNode::Merge { .. } => "merge",
            PlanNode::Mutate { .. } => "mutate",
            PlanNode::Fit { .. } => "fit",
            PlanNode::Inspect { .. } => "inspect",
            PlanNode::Explain { .. } => "explain",
        }
    }

    /// The slot this node writes.
    pub fn out(&self) -> VarId {
        match self {
            PlanNode::Scan { out, .. }
            | PlanNode::Bind { out, .. }
            | PlanNode::Project { out, .. }
            | PlanNode::Score { out, .. }
            | PlanNode::TopK { out, .. }
            | PlanNode::Merge { out, .. }
            | PlanNode::Mutate { out, .. }
            | PlanNode::Fit { out, .. }
            | PlanNode::Inspect { out, .. }
            | PlanNode::Explain { out, .. } => *out,
        }
    }
}

/// A compiled statement: plan nodes in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    /// Nodes, in execution order.
    pub nodes: Vec<PlanNode>,
    /// Number of [`VarId`] slots the executor must allocate.
    pub slots: usize,
}

impl LogicalPlan {
    /// Renders the plan deterministically, one node per line — the payload
    /// of `EXPLAIN`. The rendering depends only on the compiled plan (never
    /// on runtime state), so it is stable across runs and snapshot-testable.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, indent: usize, out: &mut String) {
        use fmt::Write as _;
        for node in &self.nodes {
            for _ in 0..indent {
                out.push(' ');
            }
            // Writing into a String cannot fail; ignore the fmt plumbing.
            let _ = write!(out, "{} <- ", node.out());
            match node {
                PlanNode::Scan { min_group, out: _ } => {
                    let _ = match min_group {
                        None => write!(out, "Scan workers filter=all"),
                        Some(n) => write!(out, "Scan workers filter=group>={n}"),
                    };
                    out.push_str(" retry=transient<=3");
                }
                PlanNode::Bind {
                    backend, lazy_fit, ..
                } => {
                    let _ = write!(out, "Bind backend={backend} lazy_fit=");
                    let _ = match lazy_fit {
                        Some(l) => write!(out, "{l}"),
                        None => write!(out, "unknown"),
                    };
                }
                PlanNode::Project {
                    texts,
                    cache,
                    binding,
                    ..
                } => {
                    let _ = write!(out, "Project[{binding}] cache={cache} texts=[");
                    for (i, t) in texts.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&quote(t));
                    }
                    out.push(']');
                }
                PlanNode::Score {
                    backend,
                    k,
                    precision,
                    queries,
                    candidates,
                    ..
                } => {
                    let _ = write!(
                        out,
                        "Score[{queries}, {candidates}] backend={backend} k={k} guard=deadline,cancel,budget precision={precision} pool=persistent"
                    );
                }
                PlanNode::TopK { k, input, .. } => {
                    let _ = write!(out, "TopK[{input}] k={k} on_interrupt=error|partial");
                }
                PlanNode::Merge { input, .. } => {
                    let _ = write!(out, "Merge[{input}]");
                }
                PlanNode::Mutate { op, .. } => {
                    let _ = write!(
                        out,
                        "Mutate {op} invalidates={} retry=transient<=3",
                        mutation_name(op)
                    );
                }
                PlanNode::Fit {
                    backend,
                    categories,
                    ..
                } => {
                    let _ = write!(out, "Fit backend={backend} categories={categories}");
                }
                PlanNode::Inspect { target, .. } => {
                    let _ = write!(out, "Inspect ");
                    let _ = match target {
                        ShowTarget::Stats => write!(out, "stats"),
                        ShowTarget::Worker(w) => write!(out, "worker={w}"),
                        ShowTarget::Task(t) => write!(out, "task={t}"),
                        ShowTarget::Groups(ns) => {
                            let _ = write!(out, "groups=[");
                            for (i, n) in ns.iter().enumerate() {
                                if i > 0 {
                                    out.push_str(", ");
                                }
                                let _ = write!(out, "{n}");
                            }
                            write!(out, "]")
                        }
                        ShowTarget::Similar { text, limit } => {
                            write!(out, "similar={} limit={limit}", quote(text))
                        }
                    };
                }
                PlanNode::Explain { plan, .. } => {
                    out.push_str("Explain");
                    out.push('\n');
                    plan.render_into(indent + 2, out);
                    continue; // the sub-plan already ended with a newline
                }
            }
            out.push('\n');
        }
    }
}

/// Stable lowercase name of a mutation's invalidation class.
fn mutation_name(op: &MutationOp) -> &'static str {
    match op.invalidates() {
        DbMutation::WorkerAdded => "worker-added",
        DbMutation::TaskAdded => "task-added",
        DbMutation::Assigned => "assigned",
        DbMutation::Feedback => "feedback",
        DbMutation::Answer => "answer",
    }
}

/// Quotes a string literal the way the query language writes it.
fn quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_ids_display_as_slots() {
        assert_eq!(VarId(3).to_string(), "v3");
    }

    #[test]
    fn mutation_ops_know_their_invalidation_class() {
        let cases: Vec<(MutationOp, DbMutation)> = vec![
            (
                MutationOp::InsertWorker { handle: "a".into() },
                DbMutation::WorkerAdded,
            ),
            (
                MutationOp::InsertTask { text: "t".into() },
                DbMutation::TaskAdded,
            ),
            (
                MutationOp::Assign {
                    worker: WorkerId(0),
                    task: TaskId(1),
                },
                DbMutation::Assigned,
            ),
            (
                MutationOp::Feedback {
                    worker: WorkerId(0),
                    task: TaskId(1),
                    score: 4.0,
                },
                DbMutation::Feedback,
            ),
            (
                MutationOp::Answer {
                    worker: WorkerId(0),
                    task: TaskId(1),
                    text: "x".into(),
                },
                DbMutation::Answer,
            ),
        ];
        for (op, want) in cases {
            assert_eq!(op.invalidates(), want, "{op}");
        }
    }

    #[test]
    fn render_quotes_and_escapes_literals() {
        let plan = LogicalPlan {
            nodes: vec![PlanNode::Mutate {
                op: MutationOp::InsertWorker {
                    handle: "it's ada".into(),
                },
                out: VarId(0),
            }],
            slots: 1,
        };
        let text = plan.render();
        assert!(text.contains("'it''s ada'"), "{text}");
        assert!(text.contains("invalidates=worker-added"), "{text}");
    }
}
