//! Lowering parsed statements into logical plans.
//!
//! Compilation is infallible and side-effect free: name resolution that can
//! fail (unknown backends, missing models, empty candidate pools) is left to
//! the executor so error precedence matches the pre-plan engine exactly —
//! an empty pool is reported before an unknown backend, because `Scan` runs
//! before `Bind`. The compiler's one cross-statement optimization is
//! *select fusion* ([`compile_select_batch`]): a sweep of `SELECT WORKERS`
//! statements over one candidate pool lowers to a single plan whose
//! `Project`/`Score` nodes carry every query, bottoming out in the batched
//! kernels ([`crowd_core::TdpmModel::select_top_k_batch`],
//! [`crowd_select::CrowdSelector::select_batch`]).

use super::{CacheDecision, LogicalPlan, MutationOp, PlanNode, VarId};
use crate::ast::{BackendName, Statement};
use crowd_core::Precision;
use crowd_select::SelectorRegistry;

/// Incrementally numbers slots while nodes are appended.
struct PlanBuilder {
    nodes: Vec<PlanNode>,
    next: usize,
}

impl PlanBuilder {
    fn new() -> Self {
        PlanBuilder {
            nodes: Vec::new(),
            next: 0,
        }
    }

    fn var(&mut self) -> VarId {
        let v = VarId(self.next);
        self.next += 1;
        v
    }

    fn push(&mut self, node: PlanNode) {
        self.nodes.push(node);
    }

    fn finish(self) -> LogicalPlan {
        LogicalPlan {
            nodes: self.nodes,
            slots: self.next,
        }
    }
}

/// Compiles one statement into its logical plan.
///
/// `registry` is consulted only for compile-time plan *properties* (a
/// backend's lazy-fit flag, the projection-cache decision); resolution
/// errors still surface at execution time.
pub fn compile(stmt: &Statement, registry: &SelectorRegistry) -> LogicalPlan {
    compile_with(stmt, registry, Precision::F64)
}

/// [`compile`] under an explicit serving-precision policy (what the engine
/// passes from [`crate::QueryEngine::set_precision`]); the precision is a
/// compile-time plan property stamped onto `Score` nodes and rendered by
/// `EXPLAIN`.
pub fn compile_with(
    stmt: &Statement,
    registry: &SelectorRegistry,
    precision: Precision,
) -> LogicalPlan {
    match stmt {
        Statement::InsertWorker { handle } => mutation(MutationOp::InsertWorker {
            handle: handle.clone(),
        }),
        Statement::InsertTask { text } => mutation(MutationOp::InsertTask { text: text.clone() }),
        Statement::Assign { worker, task } => mutation(MutationOp::Assign {
            worker: *worker,
            task: *task,
        }),
        Statement::Feedback {
            worker,
            task,
            score,
        } => mutation(MutationOp::Feedback {
            worker: *worker,
            task: *task,
            score: *score,
        }),
        Statement::Answer { worker, task, text } => mutation(MutationOp::Answer {
            worker: *worker,
            task: *task,
            text: text.clone(),
        }),
        Statement::TrainModel { categories } => {
            let mut b = PlanBuilder::new();
            let out = b.var();
            b.push(PlanNode::Fit {
                backend: BackendName::default(),
                categories: *categories,
                out,
            });
            b.finish()
        }
        Statement::SelectWorkers {
            text,
            limit,
            backend,
            min_group,
        } => select_plan(
            std::slice::from_ref(text),
            *limit,
            backend.clone(),
            *min_group,
            registry,
            precision,
        ),
        Statement::Show(target) => {
            let mut b = PlanBuilder::new();
            let out = b.var();
            b.push(PlanNode::Inspect {
                target: target.clone(),
                out,
            });
            b.finish()
        }
        Statement::Explain(inner) => {
            let mut b = PlanBuilder::new();
            let out = b.var();
            b.push(PlanNode::Explain {
                plan: Box::new(compile_with(inner, registry, precision)),
                out,
            });
            b.finish()
        }
    }
}

/// Compiles a fused plan for a sweep of `SELECT WORKERS` statements sharing
/// one backend, limit and candidate filter — the plan behind
/// [`crate::QueryEngine::select_workers_batch`]. Equivalent to compiling
/// and executing the statements one at a time (bit-identical rankings), but
/// the candidate pool is scanned once and all queries flow through the
/// batched scoring kernels.
pub fn compile_select_batch(
    texts: &[&str],
    limit: usize,
    backend: &BackendName,
    min_group: Option<usize>,
    registry: &SelectorRegistry,
) -> LogicalPlan {
    compile_select_batch_with(texts, limit, backend, min_group, registry, Precision::F64)
}

/// [`compile_select_batch`] under an explicit serving-precision policy.
pub fn compile_select_batch_with(
    texts: &[&str],
    limit: usize,
    backend: &BackendName,
    min_group: Option<usize>,
    registry: &SelectorRegistry,
    precision: Precision,
) -> LogicalPlan {
    let owned: Vec<String> = texts.iter().map(|t| (*t).to_string()).collect();
    select_plan(
        &owned,
        limit,
        backend.clone(),
        min_group,
        registry,
        precision,
    )
}

fn mutation(op: MutationOp) -> LogicalPlan {
    let mut b = PlanBuilder::new();
    let out = b.var();
    b.push(PlanNode::Mutate { op, out });
    b.finish()
}

/// The canonical Scan → Bind → Project → Score → TopK → Merge pipeline.
fn select_plan(
    texts: &[String],
    limit: usize,
    backend: BackendName,
    min_group: Option<usize>,
    registry: &SelectorRegistry,
    precision: Precision,
) -> LogicalPlan {
    let mut b = PlanBuilder::new();

    let candidates = b.var();
    b.push(PlanNode::Scan {
        min_group,
        out: candidates,
    });

    // Plan properties resolved against the registry at compile time; an
    // unknown backend stays `None` and fails in the executor (after Scan,
    // preserving the engine's historical error precedence).
    let lazy_fit = registry.get(backend.as_str()).ok().map(|be| be.lazy_fit());
    let binding = b.var();
    b.push(PlanNode::Bind {
        backend: backend.clone(),
        lazy_fit,
        out: binding,
    });

    // The projection cache serves Algorithm-3 projections, which only the
    // TDPM backend has; everything else bypasses it. The executor follows
    // the bound snapshot's actual type, so a custom backend wrapping a
    // TdpmModel under another name still caches — this property records the
    // compiler's expectation for EXPLAIN.
    let cache = if backend.as_str() == "tdpm" {
        CacheDecision::Projection
    } else {
        CacheDecision::Bypass
    };
    let queries = b.var();
    b.push(PlanNode::Project {
        texts: texts.to_vec(),
        cache,
        binding,
        out: queries,
    });

    // Limit pushdown: Score receives TopK's k so the executor can drive the
    // fused rank-and-truncate kernels instead of fully sorting the pool.
    let scored = b.var();
    b.push(PlanNode::Score {
        backend,
        k: limit,
        precision,
        queries,
        candidates,
        out: scored,
    });

    let topped = b.var();
    b.push(PlanNode::TopK {
        k: limit,
        input: scored,
        out: topped,
    });

    let merged = b.var();
    b.push(PlanNode::Merge {
        input: topped,
        out: merged,
    });

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crowd_baselines::standard_registry;

    fn plan_for(stmt: &str) -> LogicalPlan {
        compile(&parse(stmt).unwrap(), &standard_registry())
    }

    #[test]
    fn select_lowers_to_the_canonical_pipeline() {
        let plan = plan_for("SELECT WORKERS FOR TASK 'btree split' LIMIT 2 WHERE GROUP >= 3");
        let kinds: Vec<&str> = plan.nodes.iter().map(PlanNode::kind).collect();
        assert_eq!(
            kinds,
            vec!["scan", "bind", "project", "score", "topk", "merge"]
        );
        assert_eq!(plan.slots, 6);
        assert!(matches!(
            plan.nodes[0],
            PlanNode::Scan {
                min_group: Some(3),
                ..
            }
        ));
        // TDPM is the explicit-fit backend and takes the projection cache.
        assert!(matches!(
            plan.nodes[1],
            PlanNode::Bind {
                lazy_fit: Some(false),
                ..
            }
        ));
        assert!(matches!(
            plan.nodes[2],
            PlanNode::Project {
                cache: CacheDecision::Projection,
                ..
            }
        ));
        // Limit pushdown: Score carries TopK's k.
        assert!(matches!(plan.nodes[3], PlanNode::Score { k: 2, .. }));
        assert!(matches!(plan.nodes[4], PlanNode::TopK { k: 2, .. }));
    }

    #[test]
    fn baseline_backends_bypass_the_cache_and_fit_lazily() {
        let plan = plan_for("SELECT WORKERS FOR TASK 'q' USING vsm");
        assert!(matches!(
            plan.nodes[1],
            PlanNode::Bind {
                lazy_fit: Some(true),
                ..
            }
        ));
        assert!(matches!(
            plan.nodes[2],
            PlanNode::Project {
                cache: CacheDecision::Bypass,
                ..
            }
        ));
    }

    #[test]
    fn unknown_backends_compile_with_unknown_lazy_fit() {
        let plan = plan_for("SELECT WORKERS FOR TASK 'q' USING magic");
        assert!(matches!(
            plan.nodes[1],
            PlanNode::Bind { lazy_fit: None, .. }
        ));
    }

    #[test]
    fn fused_select_carries_every_text() {
        let plan = compile_select_batch(
            &["a", "b", "c"],
            2,
            &BackendName::new("vsm"),
            None,
            &standard_registry(),
        );
        let Some(PlanNode::Project { texts, .. }) = plan.nodes.get(2) else {
            panic!("expected Project, got {plan:?}");
        };
        assert_eq!(texts, &["a", "b", "c"]);
    }

    #[test]
    fn mutations_and_admin_statements_are_single_node_plans() {
        for (stmt, kind) in [
            ("INSERT WORKER 'ada'", "mutate"),
            ("INSERT TASK 'btree'", "mutate"),
            ("ASSIGN WORKER 0 TO TASK 1", "mutate"),
            ("FEEDBACK WORKER 0 ON TASK 1 SCORE 4", "mutate"),
            ("ANSWER WORKER 0 ON TASK 1 TEXT 'x'", "mutate"),
            ("TRAIN MODEL WITH 4 CATEGORIES", "fit"),
            ("SHOW STATS", "inspect"),
        ] {
            let plan = plan_for(stmt);
            assert_eq!(plan.nodes.len(), 1, "{stmt}");
            assert_eq!(plan.nodes[0].kind(), kind, "{stmt}");
        }
    }

    #[test]
    fn explain_nests_the_inner_plan() {
        let plan = plan_for("EXPLAIN SELECT WORKERS FOR TASK 'q'");
        let Some(PlanNode::Explain { plan: inner, .. }) = plan.nodes.first() else {
            panic!("expected Explain, got {plan:?}");
        };
        assert_eq!(inner.nodes.len(), 6);
        let rendered = plan.render();
        assert!(
            rendered.starts_with("v0 <- Explain\n  v0 <- Scan"),
            "{rendered}"
        );
    }
}
