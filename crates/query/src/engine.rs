//! Query execution over a crowd database.
//!
//! Since the planner/executor split, the engine is a thin facade: [`run`]
//! parses, [`execute`] compiles the statement into a [`LogicalPlan`]
//! (`crate::plan`) and hands it to the instrumented executor
//! (`crate::exec`). The engine owns the long-lived state the executor works
//! against — storage, the backend registry, fitted snapshots, the
//! projection cache, observability — plus the policy helpers (candidate
//! filtering, snapshot invalidation, lazy fitting) that plan nodes call
//! back into.
//!
//! [`run`]: QueryEngine::run
//! [`execute`]: QueryEngine::execute

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::ast::{BackendName, ShowTarget, Statement};
use crate::cache::{ProjectionCache, DEFAULT_PROJECTION_CACHE_CAPACITY};
use crate::exec;
use crate::exec::faults::{FaultInjector, RetryPolicy};
use crate::exec::storage::Storage;
use crate::exec::QueryContext;
use crate::output::{QueryOutput, SelectedWorker, WorkerTable};
use crate::plan::{self, LogicalPlan, PlanNode};
use crate::QueryError;
use crowd_baselines::standard_registry;
use crowd_select::{DbMutation, FitOptions, FittedSelector, SelectorRegistry};
use crowd_sim::QueryFaultPlan;
use crowd_store::groups::group_stats_sweep;
use crowd_store::{CrowdDb, WorkerId};
use crowd_text::{tokenize_filtered, BagOfWords};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Executes parsed statements against an owned [`CrowdDb`].
///
/// `USING <backend>` clauses are resolved by name against a
/// [`SelectorRegistry`] — the engine never matches on concrete selector
/// types, so registering a new backend makes it queryable with no engine
/// changes. Lazily fittable backends (VSM / DRM / TSPM) are fitted on first
/// use and the [`FittedSelector`] snapshot cached; any write statement
/// invalidates those snapshots. Backends that opt out of lazy fitting (TDPM
/// — it is the expensive one, and the paper's architecture retrains it
/// deliberately on the red path) are only fitted by an explicit
/// `TRAIN MODEL`, and their snapshots survive writes until the next train.
///
/// Statements execute through a compile → plan → execute pipeline:
/// [`compile`](QueryEngine::compile) lowers the AST into a [`LogicalPlan`]
/// and [`execute_plan`](QueryEngine::execute_plan) walks it with per-node
/// `query/plan_node_seconds_*` instrumentation. `EXPLAIN <statement>`
/// renders the plan instead of executing it.
#[derive(Debug)]
pub struct QueryEngine {
    pub(crate) storage: Storage,
    pub(crate) registry: SelectorRegistry,
    pub(crate) fitted: HashMap<String, FittedSelector>,
    pub(crate) baseline_categories: usize,
    pub(crate) seed: u64,
    pub(crate) epoch: u64,
    pub(crate) obs: crowd_obs::Obs,
    /// LRU of TDPM task projections keyed by query content; entries are
    /// valid for exactly one fit epoch (see [`crate::cache`]).
    pub(crate) cache: ProjectionCache,
    /// Bounded-backoff retry policy for transient storage failures.
    pub(crate) retry: RetryPolicy,
    /// Deterministic fault injector over storage operations, when a chaos
    /// plan is armed (see [`QueryEngine::set_fault_injection`]).
    pub(crate) faults: Option<FaultInjector>,
    /// Concurrency/queue gate for query execution, when configured.
    admission: Option<Arc<AdmissionController>>,
    /// Serving precision for the TDPM dense kernels (baselines always
    /// serve f64). A compile-time plan property: changing it affects
    /// plans compiled afterwards, never an in-flight execution.
    precision: crowd_core::Precision,
}

impl QueryEngine {
    /// Creates an engine over an empty database.
    pub fn new() -> Self {
        QueryEngine::with_db(CrowdDb::new())
    }

    /// Creates an engine whose mutations are write-ahead logged to `path`;
    /// existing log entries are replayed first (see [`crowd_store::wal`]).
    pub fn open_logged(path: impl AsRef<Path>) -> Result<Self, QueryError> {
        let mut e = QueryEngine::with_db(CrowdDb::new());
        e.storage = Storage::open_logged(path)?;
        Ok(e)
    }

    /// Creates an engine over an existing database, with the standard
    /// backend registry (`tdpm`, `vsm`, `drm`, `tspm`).
    pub fn with_db(db: CrowdDb) -> Self {
        QueryEngine::with_db_and_registry(db, standard_registry())
    }

    /// Creates an engine over an existing database and a custom backend
    /// registry, making additional selection algorithms addressable from
    /// `USING` clauses.
    pub fn with_db_and_registry(db: CrowdDb, registry: SelectorRegistry) -> Self {
        QueryEngine {
            storage: Storage::Plain(db),
            registry,
            fitted: HashMap::new(),
            baseline_categories: 10,
            seed: 42,
            epoch: 0,
            obs: crowd_obs::Obs::noop(),
            cache: ProjectionCache::new(DEFAULT_PROJECTION_CACHE_CAPACITY),
            retry: RetryPolicy::default(),
            faults: None,
            admission: None,
            precision: crowd_core::Precision::F64,
        }
    }

    /// Replaces the bounded-backoff retry policy the executor applies to
    /// transient storage failures.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Arms (or, with `None`, disarms) deterministic fault injection over
    /// the engine's storage operations. The seeded plan assigns a fault —
    /// transient error, latency stall, or detected partial read — to each
    /// storage operation index, so a chaos run is exactly reproducible.
    pub fn set_fault_injection(&mut self, plan: Option<QueryFaultPlan>) {
        self.faults = plan.map(FaultInjector::new);
    }

    /// Installs (or, with `None`, removes) admission control: bounded
    /// concurrent execution slots plus a bounded, timed wait queue. Every
    /// plan execution then passes through [`AdmissionController::admit`],
    /// and rejections surface as [`QueryError::Admission`].
    pub fn set_admission(&mut self, cfg: Option<AdmissionConfig>) {
        self.admission = cfg.map(AdmissionController::new);
    }

    /// The admission controller, when one is installed — shareable, so
    /// load-test harnesses can watch `active`/`queued` from other threads.
    pub fn admission(&self) -> Option<&Arc<AdmissionController>> {
        self.admission.as_ref()
    }

    /// Selects the serving precision for TDPM dense scoring:
    /// [`crowd_core::Precision::F32`] routes `SELECT` statements through the
    /// f32 skill mirror (deterministic, rank-stable modulo f32-epsilon ties,
    /// accuracy contract in DESIGN.md §10c); the default `F64` is the
    /// bit-identity oracle path. Baseline backends always serve f64. Like
    /// retries and admission, this is engine policy: it is stamped onto
    /// plans at compile time and shows up in `EXPLAIN` as `precision=<p>`.
    pub fn set_precision(&mut self, precision: crowd_core::Precision) {
        self.precision = precision;
    }

    /// The engine's current serving precision.
    pub fn precision(&self) -> crowd_core::Precision {
        self.precision
    }

    /// Attaches an observability handle. `SELECT WORKERS` latency is
    /// recorded per backend under the `query` component
    /// (`select_seconds_<backend>`), `TRAIN MODEL` under `train_seconds`,
    /// every plan node under `plan_node_seconds_<kind>`, and — for logged
    /// engines — the WAL timings under `wal` (see
    /// [`crowd_store::LoggedDb::set_obs`]).
    pub fn set_obs(&mut self, obs: crowd_obs::Obs) {
        self.storage.set_obs(&obs);
        self.obs = obs;
    }

    /// The underlying database.
    pub fn db(&self) -> &CrowdDb {
        self.storage.db()
    }

    /// The backend registry serving `USING` clauses.
    pub fn registry(&self) -> &SelectorRegistry {
        &self.registry
    }

    /// The cached fit for `backend`, if one is currently serving.
    pub fn fitted(&self, backend: &str) -> Option<&FittedSelector> {
        self.fitted.get(&backend.to_ascii_lowercase())
    }

    /// Parses and executes one statement under an unbounded
    /// [`QueryContext`].
    pub fn run(&mut self, input: &str) -> Result<QueryOutput, QueryError> {
        self.run_with(input, &QueryContext::unbounded())
    }

    /// Parses and executes one statement under a caller-supplied
    /// [`QueryContext`] (deadline, cancellation, budget, degradation
    /// policy).
    pub fn run_with(&mut self, input: &str, ctx: &QueryContext) -> Result<QueryOutput, QueryError> {
        let stmt = crate::parse(input)?;
        self.execute_with(stmt, ctx)
    }

    /// Executes a parsed statement by compiling it into a [`LogicalPlan`]
    /// and walking the plan.
    // crowd-lint: root(wait)
    pub fn execute(&mut self, stmt: Statement) -> Result<QueryOutput, QueryError> {
        self.execute_with(stmt, &QueryContext::unbounded())
    }

    /// [`QueryEngine::execute`] under a caller-supplied [`QueryContext`].
    // crowd-lint: root(wait)
    pub fn execute_with(
        &mut self,
        stmt: Statement,
        ctx: &QueryContext,
    ) -> Result<QueryOutput, QueryError> {
        let plan = self.compile(&stmt);
        let mut outputs = self.execute_plan_with(&plan, ctx)?;
        if outputs.len() == 1 {
            Ok(outputs.swap_remove(0))
        } else {
            Err(QueryError::Execution(format!(
                "internal plan error: statement produced {} outputs",
                outputs.len()
            )))
        }
    }

    /// Compiles a statement into its logical plan without executing it.
    pub fn compile(&self, stmt: &Statement) -> LogicalPlan {
        plan::compile_with(stmt, &self.registry, self.precision)
    }

    /// The deterministic plan rendering for a statement — what
    /// `EXPLAIN <statement>` returns, usable directly from the API.
    pub fn explain(&self, stmt: &Statement) -> String {
        self.compile(stmt).render()
    }

    /// Executes a compiled plan, returning one output per covered statement
    /// (fused `SELECT` plans return one [`QueryOutput::Workers`] per query,
    /// in input order).
    ///
    /// Besides the per-node `plan_node_seconds_*` timers recorded by the
    /// executor, plans that score queries keep the historical select
    /// metrics: the `query/selects` counter advances by the number of
    /// result tables and `select_seconds_<backend>` observes the whole
    /// plan's latency once.
    // crowd-lint: root(wait)
    pub fn execute_plan(&mut self, plan: &LogicalPlan) -> Result<Vec<QueryOutput>, QueryError> {
        self.execute_plan_with(plan, &QueryContext::unbounded())
    }

    /// [`QueryEngine::execute_plan`] under a caller-supplied
    /// [`QueryContext`]. When admission control is installed
    /// ([`QueryEngine::set_admission`]) the execution first takes a slot —
    /// counting `query/admission_{admitted,queued,shed}` and observing
    /// `query/queue_wait_seconds` — and sheds or times out with
    /// [`QueryError::Admission`] under overload.
    // crowd-lint: root(wait)
    pub fn execute_plan_with(
        &mut self,
        plan: &LogicalPlan,
        ctx: &QueryContext,
    ) -> Result<Vec<QueryOutput>, QueryError> {
        let permit = match &self.admission {
            None => None,
            Some(ctl) => {
                let ctl = Arc::clone(ctl);
                let m = &self.obs.metrics;
                match ctl.admit() {
                    Ok(permit) => {
                        m.counter("query", "admission_admitted").inc();
                        if permit.was_queued() {
                            m.counter("query", "admission_queued").inc();
                        }
                        m.histogram("query", "queue_wait_seconds")
                            .observe_duration(permit.queue_wait());
                        Some(permit)
                    }
                    Err(e) => {
                        m.counter("query", "admission_shed").inc();
                        return Err(QueryError::Admission(e));
                    }
                }
            }
        };
        let scored_backend = plan.nodes.iter().find_map(|n| match n {
            PlanNode::Score { backend, .. } => Some(backend.clone()),
            _ => None,
        });
        let started = std::time::Instant::now();
        let queue_wait = permit.as_ref().map(|p| p.queue_wait());
        let result = exec::execute_ctx(self, plan, ctx, queue_wait);
        drop(permit);
        let outputs = result?;
        if let Some(backend) = scored_backend {
            // Per-backend latency: one histogram per backend name keeps the
            // snapshot self-describing (no label dimension in the registry).
            let m = &self.obs.metrics;
            m.counter("query", "selects").add(outputs.len() as u64);
            m.histogram("query", &format!("select_seconds_{}", backend.as_str()))
                .observe_duration(started.elapsed());
        }
        Ok(outputs)
    }

    /// Executes one `SELECT WORKERS` sweep for several task texts against a
    /// single backend and candidate pool, returning one ranking per text in
    /// input order.
    ///
    /// Equivalent to running the statement once per text (bit-identical
    /// scores) but cheaper: the sweep compiles to one fused plan
    /// ([`crate::plan::compile_select_batch`]) whose candidate pool is
    /// scanned once, TDPM queries flow through the projection cache and the
    /// cache-blocked batch kernel of [`crowd_core::SkillMatrix`], and the
    /// baselines amortize their profile resolution through
    /// [`crowd_select::CrowdSelector::select_batch`].
    pub fn select_workers_batch(
        &mut self,
        texts: &[&str],
        limit: usize,
        backend: &str,
        min_group: Option<usize>,
    ) -> Result<Vec<WorkerTable>, QueryError> {
        self.select_workers_batch_with(texts, limit, backend, min_group, &QueryContext::unbounded())
    }

    /// [`QueryEngine::select_workers_batch`] under a caller-supplied
    /// [`QueryContext`]: the whole sweep shares one deadline, cancellation
    /// token and work budget, and under [`crate::DegradePolicy::Partial`]
    /// an interruption yields per-query tables marked `degraded` instead
    /// of an error.
    pub fn select_workers_batch_with(
        &mut self,
        texts: &[&str],
        limit: usize,
        backend: &str,
        min_group: Option<usize>,
        ctx: &QueryContext,
    ) -> Result<Vec<WorkerTable>, QueryError> {
        let backend = BackendName::new(backend);
        let plan = plan::compile_select_batch_with(
            texts,
            limit,
            &backend,
            min_group,
            &self.registry,
            self.precision,
        );
        let outputs = self.execute_plan_with(&plan, ctx)?;
        let mut tables = Vec::with_capacity(outputs.len());
        for output in outputs {
            match output {
                QueryOutput::Workers(rows) => tables.push(rows),
                other => {
                    return Err(QueryError::Execution(format!(
                        "internal plan error: expected a worker table, got {other}"
                    )))
                }
            }
        }
        Ok(tables)
    }

    /// Explicitly fits `backend` (the `TRAIN MODEL` / [`PlanNode::Fit`]
    /// path), bumping the fit epoch and replacing the serving snapshot.
    pub(crate) fn train(
        &mut self,
        backend: &BackendName,
        categories: usize,
    ) -> Result<QueryOutput, QueryError> {
        let started = std::time::Instant::now();
        self.epoch += 1;
        let fitted = self
            .registry
            .fit(
                backend.as_str(),
                self.db(),
                &FitOptions::with(categories, self.seed),
            )?
            .with_epoch(self.epoch);
        let diag = fitted.diagnostics().clone();
        self.fitted.insert(backend.as_str().to_string(), fitted);
        self.obs
            .metrics
            .histogram("query", "train_seconds")
            .observe_duration(started.elapsed());
        Ok(QueryOutput::Trained {
            iterations: diag.iterations,
            elbo: diag.objective().unwrap_or(f64::NAN),
            converged: diag.converged,
        })
    }

    /// Makes sure a serving snapshot for `backend` exists in `self.fitted`,
    /// fitting it on demand if the backend allows lazy fits (the
    /// [`PlanNode::Bind`] path).
    ///
    /// Split from the lookup so the executor can borrow the snapshot and
    /// the projection cache as disjoint fields afterwards.
    pub(crate) fn ensure_fitted(&mut self, backend: &BackendName) -> Result<(), QueryError> {
        let name = backend.as_str();
        if !self.fitted.contains_key(name) {
            let b = self.registry.get(name)?;
            if !b.lazy_fit() {
                return Err(QueryError::Execution(
                    "no model: run TRAIN MODEL first".into(),
                ));
            }
            self.epoch += 1;
            let fitted = self
                .registry
                .fit(
                    name,
                    self.db(),
                    &FitOptions::with(self.baseline_categories, self.seed),
                )?
                .with_epoch(self.epoch);
            self.fitted.insert(name.to_string(), fitted);
        }
        Ok(())
    }

    /// The candidate pool for a `SELECT WORKERS` (the [`PlanNode::Scan`]
    /// path), honoring the optional `WHERE GROUP >= n` filter.
    pub(crate) fn candidate_pool(
        &self,
        min_group: Option<usize>,
    ) -> Result<Vec<WorkerId>, QueryError> {
        let db = self.db();
        let candidates: Vec<WorkerId> = match min_group {
            None => db.worker_ids().collect(),
            Some(n) => db
                .worker_ids()
                .filter(|&w| db.worker_task_count(w) >= n)
                .collect(),
        };
        if candidates.is_empty() {
            return Err(QueryError::Execution(
                "no candidate workers match the WHERE clause".into(),
            ));
        }
        Ok(candidates)
    }

    /// Decorates a ranking with worker handles for presentation (the
    /// [`PlanNode::Merge`] path).
    pub(crate) fn to_rows(&self, ranked: Vec<crowd_select::RankedWorker>) -> Vec<SelectedWorker> {
        ranked
            .into_iter()
            .map(|r| SelectedWorker {
                worker: r.worker,
                handle: self
                    .db()
                    .worker(r.worker)
                    .map(|w| w.handle.clone())
                    .unwrap_or_default(),
                score: r.score,
            })
            .collect()
    }

    /// Read-only inspection (the `SHOW …` / [`PlanNode::Inspect`] path).
    pub(crate) fn show(&self, target: &ShowTarget) -> Result<QueryOutput, QueryError> {
        match target {
            ShowTarget::Stats => Ok(QueryOutput::Stats {
                workers: self.db().num_workers(),
                tasks: self.db().num_tasks(),
                assignments: self.db().num_assignments(),
                resolved: self.db().num_resolved(),
                vocab: self.db().vocab().len(),
                trained: self.fitted.contains_key("tdpm"),
            }),
            ShowTarget::Worker(worker) => {
                let worker = *worker;
                let rec = self.db().worker(worker)?;
                let skills = self
                    .fitted
                    .get("tdpm")
                    .and_then(|f| f.selector().worker_profile(worker))
                    .unwrap_or_default();
                Ok(QueryOutput::WorkerDetail {
                    worker,
                    handle: rec.handle.clone(),
                    resolved_tasks: self.db().worker_task_count(worker),
                    skills,
                })
            }
            ShowTarget::Task(task) => {
                let task = *task;
                let rec = self.db().task(task)?;
                let scores = self
                    .db()
                    .workers_of(task)
                    .filter_map(|(w, s)| s.map(|s| (w, s)))
                    .collect();
                Ok(QueryOutput::TaskDetail {
                    task,
                    text: rec.text.clone(),
                    scores,
                })
            }
            ShowTarget::Groups(thresholds) => Ok(QueryOutput::Groups(group_stats_sweep(
                self.db(),
                thresholds,
            ))),
            ShowTarget::Similar { text, limit } => {
                let db = self.db();
                let tokens = tokenize_filtered(text);
                let bow = BagOfWords::from_known_tokens(&tokens, db.vocab());
                let rows = db
                    .similar_tasks(&bow, *limit)
                    .into_iter()
                    .map(|(t, sim)| {
                        let text = db.task(t).map(|r| r.text.clone()).unwrap_or_default();
                        (t, text, sim)
                    })
                    .collect();
                Ok(QueryOutput::SimilarTasks(rows))
            }
        }
    }

    /// Drops lazily fitted snapshots whose fit actually depends on the kind
    /// of write that just happened (each backend declares its dependencies
    /// via [`crowd_select::SelectorBackend::invalidated_by`]) — a
    /// `FEEDBACK` no longer throws away a VSM fit whose profiles ignore
    /// scores. Explicitly fitted backends (TDPM) are always kept: retraining
    /// is explicit (`TRAIN MODEL`), like the red data-flow in the paper's
    /// architecture. The projection cache also survives: projections depend
    /// only on the fitted parameters, and a retrain bumps the epoch the
    /// cache keys against.
    pub(crate) fn invalidate(&mut self, mutation: DbMutation) {
        let registry = &self.registry;
        self.fitted.retain(|name, _| {
            registry
                .get(name)
                .is_ok_and(|b| !b.lazy_fit() || !b.invalidated_by(mutation))
        });
    }
}

impl Default for QueryEngine {
    fn default() -> Self {
        QueryEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a two-specialist database entirely through the query language.
    fn seeded_engine() -> QueryEngine {
        let mut e = QueryEngine::new();
        e.run("INSERT WORKER 'dba'").unwrap();
        e.run("INSERT WORKER 'stat'").unwrap();
        let tasks = [
            ("btree page split index buffer disk", 0, 1),
            ("gaussian prior posterior likelihood variance", 1, 0),
            ("btree range scan clustered index", 0, 1),
            ("variational bayes gaussian inference", 1, 0),
            ("btree write amplification buffer pool", 0, 1),
            ("posterior variance of a gaussian", 1, 0),
        ];
        for (i, (text, good, bad)) in tasks.iter().enumerate() {
            e.run(&format!("INSERT TASK '{text}'")).unwrap();
            e.run(&format!("ASSIGN WORKER {good} TO TASK {i}")).unwrap();
            e.run(&format!("ASSIGN WORKER {bad} TO TASK {i}")).unwrap();
            e.run(&format!("FEEDBACK WORKER {good} ON TASK {i} SCORE 4"))
                .unwrap();
            e.run(&format!("FEEDBACK WORKER {bad} ON TASK {i} SCORE 0.5"))
                .unwrap();
        }
        e
    }

    #[test]
    fn inserts_return_dense_ids() {
        let mut e = QueryEngine::new();
        assert_eq!(
            e.run("INSERT WORKER 'a'").unwrap(),
            QueryOutput::WorkerInserted(WorkerId(0))
        );
        assert_eq!(
            e.run("INSERT WORKER 'b'").unwrap(),
            QueryOutput::WorkerInserted(WorkerId(1))
        );
        assert!(matches!(
            e.run("INSERT TASK 'hello world'").unwrap(),
            QueryOutput::TaskInserted(_)
        ));
    }

    #[test]
    fn full_session_routes_to_specialist() {
        let mut e = seeded_engine();
        let out = e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
        assert!(matches!(out, QueryOutput::Trained { iterations, .. } if iterations >= 1));

        let out = e
            .run("SELECT WORKERS FOR TASK 'why does a btree split pages' LIMIT 1")
            .unwrap();
        let QueryOutput::Workers(rows) = out else {
            panic!("expected workers")
        };
        assert_eq!(rows[0].handle, "dba");

        let out = e
            .run("SELECT WORKERS FOR TASK 'prior for a gaussian variance' LIMIT 2")
            .unwrap();
        let QueryOutput::Workers(rows) = out else {
            panic!("expected workers")
        };
        assert_eq!(rows[0].handle, "stat");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn tdpm_requires_training() {
        let mut e = seeded_engine();
        let err = e.run("SELECT WORKERS FOR TASK 'q'").unwrap_err();
        assert!(err.to_string().contains("TRAIN MODEL"), "{err}");
    }

    #[test]
    fn unknown_backend_is_rejected_with_known_names() {
        let mut e = seeded_engine();
        let err = e
            .run("SELECT WORKERS FOR TASK 'q' USING magic")
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("magic"), "{msg}");
        for known in ["tdpm", "vsm", "drm", "tspm"] {
            assert!(msg.contains(known), "{msg}");
        }
    }

    #[test]
    fn empty_pool_reported_before_unknown_backend() {
        // Scan runs before Bind, so the empty-pool error wins — the
        // pre-plan engine behaved the same way and callers match on it.
        let mut e = QueryEngine::new();
        let err = e
            .run("SELECT WORKERS FOR TASK 'q' USING magic")
            .unwrap_err();
        assert!(err.to_string().contains("no candidate workers"), "{err}");
    }

    #[test]
    fn all_backends_route_through_the_registry() {
        let mut e = seeded_engine();
        e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
        for backend in ["tdpm", "vsm", "drm", "tspm"] {
            let out = e
                .run(&format!(
                    "SELECT WORKERS FOR TASK 'btree index buffer' LIMIT 1 USING {backend}"
                ))
                .unwrap();
            let QueryOutput::Workers(rows) = out else {
                panic!("expected workers")
            };
            assert_eq!(rows[0].handle, "dba", "{backend} routes the db task");
            assert_eq!(e.fitted(backend).unwrap().backend(), backend);
        }
    }

    #[test]
    fn baselines_work_without_training() {
        let mut e = seeded_engine();
        for algo in ["vsm", "drm", "tspm"] {
            let out = e
                .run(&format!(
                    "SELECT WORKERS FOR TASK 'btree index buffer' LIMIT 1 USING {algo}"
                ))
                .unwrap();
            let QueryOutput::Workers(rows) = out else {
                panic!("expected workers")
            };
            assert_eq!(rows[0].handle, "dba", "{algo} routes the db task");
        }
    }

    #[test]
    fn topic_baselines_need_resolved_tasks() {
        let mut e = QueryEngine::new();
        e.run("INSERT WORKER 'a'").unwrap();
        e.run("INSERT TASK 'btree'").unwrap();
        for algo in ["drm", "tspm"] {
            let err = e
                .run(&format!("SELECT WORKERS FOR TASK 'q' USING {algo}"))
                .unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("needs resolved tasks with feedback scores"),
                "{msg}"
            );
            assert!(msg.contains(algo), "{msg}");
        }
    }

    #[test]
    fn writes_invalidate_lazy_fits_but_keep_the_trained_model() {
        let mut e = seeded_engine();
        e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
        e.run("SELECT WORKERS FOR TASK 'btree' USING vsm").unwrap();
        assert!(e.fitted("vsm").is_some());
        assert!(e.fitted("tdpm").is_some());

        e.run("INSERT WORKER 'newcomer'").unwrap();
        assert!(e.fitted("vsm").is_none(), "lazy fit dropped on write");
        assert!(e.fitted("tdpm").is_some(), "explicit fit survives writes");
    }

    #[test]
    fn feedback_and_answers_only_drop_dependent_fits() {
        let mut e = seeded_engine();
        e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
        // A fresh assignment to score later (the write drops every lazy fit).
        e.run("INSERT TASK 'btree vacuum freeze'").unwrap();
        e.run("ASSIGN WORKER 0 TO TASK 6").unwrap();
        for b in ["vsm", "drm", "tspm"] {
            e.run(&format!("SELECT WORKERS FOR TASK 'btree' USING {b}"))
                .unwrap();
        }

        // FEEDBACK resolves a task: the topic baselines refit, VSM's
        // assignment-based profiles don't care.
        e.run("FEEDBACK WORKER 0 ON TASK 6 SCORE 4").unwrap();
        assert!(e.fitted("vsm").is_some(), "vsm ignores scores");
        assert!(e.fitted("drm").is_none(), "drm fits on resolved tasks");
        assert!(e.fitted("tspm").is_none(), "tspm fits on resolved tasks");
        assert!(e.fitted("tdpm").is_some(), "explicit fit survives");

        // ANSWER text is read by no backend: every snapshot survives.
        e.run("SELECT WORKERS FOR TASK 'btree' USING drm").unwrap();
        e.run("ANSWER WORKER 0 ON TASK 6 TEXT 'run autovacuum'")
            .unwrap();
        assert!(e.fitted("vsm").is_some());
        assert!(e.fitted("drm").is_some());
        assert!(e.fitted("tdpm").is_some());
    }

    #[test]
    fn projection_cache_counts_hits_and_misses() {
        use std::sync::Arc;
        let mut e = seeded_engine();
        let metrics = Arc::new(crowd_obs::Registry::new());
        e.set_obs(crowd_obs::Obs::new(
            metrics.clone(),
            crowd_obs::Tracer::noop(),
        ));
        e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();

        e.run("SELECT WORKERS FOR TASK 'btree index' LIMIT 1")
            .unwrap();
        e.run("SELECT WORKERS FOR TASK 'btree index' LIMIT 2")
            .unwrap();
        e.run("SELECT WORKERS FOR TASK 'gaussian prior' LIMIT 1")
            .unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("query", "select_cache_miss"), Some(2));
        assert_eq!(snap.counter("query", "select_cache_hit"), Some(1));

        // Retraining bumps the epoch: the same text misses once, then hits.
        e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
        e.run("SELECT WORKERS FOR TASK 'btree index' LIMIT 1")
            .unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("query", "select_cache_miss"), Some(3));

        // Baseline selects never touch the projection cache.
        e.run("SELECT WORKERS FOR TASK 'btree index' USING vsm")
            .unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("query", "select_cache_miss"), Some(3));
        assert_eq!(snap.counter("query", "select_cache_hit"), Some(1));
    }

    #[test]
    fn batched_select_matches_single_statements() {
        let mut e = seeded_engine();
        e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
        let texts = [
            "why does a btree split pages",
            "prior for a gaussian variance",
            "why does a btree split pages",
        ];
        for backend in ["tdpm", "vsm", "drm", "tspm"] {
            let batch = e.select_workers_batch(&texts, 2, backend, None).unwrap();
            assert_eq!(batch.len(), texts.len(), "{backend}");
            for (text, got) in texts.iter().zip(&batch) {
                let out = e
                    .run(&format!(
                        "SELECT WORKERS FOR TASK '{text}' LIMIT 2 USING {backend}"
                    ))
                    .unwrap();
                let QueryOutput::Workers(want) = out else {
                    panic!("expected workers")
                };
                assert_eq!(got.len(), want.len(), "{backend}");
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.worker, b.worker, "{backend}");
                    assert_eq!(a.handle, b.handle, "{backend}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "{backend}");
                }
            }
        }
        // The WHERE filter applies to the whole sweep.
        e.run("INSERT WORKER 'lurker'").unwrap();
        let batch = e
            .select_workers_batch(&["btree"], 10, "vsm", Some(1))
            .unwrap();
        assert!(batch[0].iter().all(|r| r.handle != "lurker"));
    }

    #[test]
    fn where_group_filters_candidates() {
        let mut e = seeded_engine();
        // A third worker with no resolved tasks.
        e.run("INSERT WORKER 'lurker'").unwrap();
        let out = e
            .run("SELECT WORKERS FOR TASK 'btree' LIMIT 10 USING vsm WHERE GROUP >= 1")
            .unwrap();
        let QueryOutput::Workers(rows) = out else {
            panic!("expected workers")
        };
        assert_eq!(rows.len(), 2, "lurker excluded by GROUP >= 1");
        assert!(rows.iter().all(|r| r.handle != "lurker"));

        let err = e
            .run("SELECT WORKERS FOR TASK 'btree' USING vsm WHERE GROUP >= 99")
            .unwrap_err();
        assert!(err.to_string().contains("no candidate workers"));
    }

    #[test]
    fn select_does_not_grow_vocabulary() {
        let mut e = seeded_engine();
        let before = e.db().vocab().len();
        e.run("SELECT WORKERS FOR TASK 'completely novel words zzz' USING vsm")
            .unwrap();
        assert_eq!(e.db().vocab().len(), before);
    }

    #[test]
    fn show_statements_report_state() {
        let mut e = seeded_engine();
        let QueryOutput::Stats {
            workers,
            tasks,
            resolved,
            trained,
            ..
        } = e.run("SHOW STATS").unwrap()
        else {
            panic!("expected stats")
        };
        assert_eq!((workers, tasks, resolved, trained), (2, 6, 12, false));

        e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
        let QueryOutput::WorkerDetail {
            handle,
            resolved_tasks,
            skills,
            ..
        } = e.run("SHOW WORKER 0").unwrap()
        else {
            panic!("expected worker detail")
        };
        assert_eq!(handle, "dba");
        assert_eq!(resolved_tasks, 6);
        assert_eq!(skills.len(), 2, "skills visible after training");

        let QueryOutput::TaskDetail { scores, .. } = e.run("SHOW TASK 0").unwrap() else {
            panic!("expected task detail")
        };
        assert_eq!(scores.len(), 2);

        let QueryOutput::Groups(rows) = e.run("SHOW GROUPS 1, 5, 99").unwrap() else {
            panic!("expected groups")
        };
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].size, 2);
        assert_eq!(rows[2].size, 0);
    }

    #[test]
    fn execution_errors_surface() {
        let mut e = QueryEngine::new();
        assert!(e.run("ASSIGN WORKER 0 TO TASK 0").is_err());
        assert!(e.run("SHOW WORKER 5").is_err());
        e.run("INSERT WORKER 'a'").unwrap();
        e.run("INSERT TASK 'x'").unwrap();
        assert!(
            e.run("FEEDBACK WORKER 0 ON TASK 0 SCORE 1").is_err(),
            "not assigned"
        );
    }

    #[test]
    fn logged_engine_survives_restart() {
        let dir = std::env::temp_dir().join("crowd_query_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("engine_{}.log", std::process::id()));
        std::fs::remove_file(&path).ok();
        {
            let mut e = QueryEngine::open_logged(&path).unwrap();
            e.run("INSERT WORKER 'ada'").unwrap();
            e.run("INSERT TASK 'btree splits'").unwrap();
            e.run("ASSIGN WORKER 0 TO TASK 0").unwrap();
            e.run("FEEDBACK WORKER 0 ON TASK 0 SCORE 4").unwrap();
        }
        // "Restart": reopen from the log alone.
        let mut e = QueryEngine::open_logged(&path).unwrap();
        let QueryOutput::Stats {
            workers,
            tasks,
            resolved,
            ..
        } = e.run("SHOW STATS").unwrap()
        else {
            panic!("expected stats")
        };
        assert_eq!((workers, tasks, resolved), (1, 1, 1));
        // And keeps accepting new statements.
        e.run("INSERT WORKER 'carl'").unwrap();
        assert_eq!(e.db().num_workers(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn show_similar_finds_related_tasks() {
        let mut e = seeded_engine();
        let out = e.run("SHOW SIMILAR 'btree index buffer' LIMIT 2").unwrap();
        let QueryOutput::SimilarTasks(rows) = out else {
            panic!("expected similar tasks")
        };
        assert_eq!(rows.len(), 2);
        assert!(rows[0].1.contains("btree"), "{rows:?}");
        assert!(rows[0].2 >= rows[1].2);
        // Query with no known terms returns nothing.
        let out = e.run("SHOW SIMILAR 'zzz qqq'").unwrap();
        assert_eq!(out, QueryOutput::SimilarTasks(vec![]));
    }

    #[test]
    fn answers_are_stored() {
        let mut e = seeded_engine();
        e.run("ANSWER WORKER 0 ON TASK 0 TEXT 'split at the median key'")
            .unwrap();
        assert!(e.db().answer(WorkerId(0), crowd_store::TaskId(0)).is_some());
    }

    #[test]
    fn explain_renders_plans_without_executing() {
        let mut e = QueryEngine::new();
        // The inner select would fail at execution time (no workers), but
        // EXPLAIN only compiles and renders.
        let out = e
            .run("EXPLAIN SELECT WORKERS FOR TASK 'btree split' LIMIT 2")
            .unwrap();
        let QueryOutput::Plan(text) = out else {
            panic!("expected a plan")
        };
        assert!(text.contains("Scan workers filter=all"), "{text}");
        assert!(text.contains("Score"), "{text}");
        assert_eq!(e.db().num_workers(), 0, "EXPLAIN never touches storage");
        // The API equivalent renders the same text.
        let stmt = crate::parse("SELECT WORKERS FOR TASK 'btree split' LIMIT 2").unwrap();
        assert_eq!(e.explain(&stmt), text);
    }

    #[test]
    fn custom_backends_are_queryable() {
        use crowd_select::{
            CrowdSelector, FitDiagnostics, FitOutcome, RankedWorker, SelectError, SelectorBackend,
        };
        use crowd_text::BagOfWords;

        /// Ranks whoever has the largest id — observably not VSM/TDPM.
        struct ByIdSelector;
        impl CrowdSelector for ByIdSelector {
            fn name(&self) -> &'static str {
                "BYID"
            }
            fn rank(&self, _task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker> {
                let scored = candidates.iter().map(|&w| (w, f64::from(w.0)));
                crowd_select::top_k(scored, candidates.len())
            }
        }
        struct ByIdBackend;
        impl SelectorBackend for ByIdBackend {
            fn name(&self) -> &'static str {
                "byid"
            }
            fn fit(&self, _db: &CrowdDb, _opts: &FitOptions) -> Result<FitOutcome, SelectError> {
                Ok(FitOutcome::new(
                    Box::new(ByIdSelector),
                    FitDiagnostics::closed_form(),
                ))
            }
        }

        let mut registry = standard_registry();
        registry.register(Box::new(ByIdBackend));
        let mut e = QueryEngine::with_db_and_registry(CrowdDb::new(), registry);
        e.run("INSERT WORKER 'a'").unwrap();
        e.run("INSERT WORKER 'b'").unwrap();
        let QueryOutput::Workers(rows) = e.run("SELECT WORKERS FOR TASK 'q' USING byid").unwrap()
        else {
            panic!("expected workers")
        };
        assert_eq!(rows[0].handle, "b", "largest id wins under byid");
    }

    // ---- deadline / cancellation / budget / degradation -----------------

    use crate::exec::{CancelToken, QueryContext};
    use std::sync::Arc as StdArc;
    use std::time::Duration;

    fn snapshot_obs(e: &mut QueryEngine) -> StdArc<crowd_obs::Registry> {
        let metrics = StdArc::new(crowd_obs::Registry::new());
        e.set_obs(crowd_obs::Obs::new(
            metrics.clone(),
            crowd_obs::Tracer::noop(),
        ));
        metrics
    }

    #[test]
    fn cancelled_context_is_always_a_typed_error() {
        let mut e = seeded_engine();
        let metrics = snapshot_obs(&mut e);
        let token = CancelToken::new();
        token.cancel();
        // Even under the partial policy: cancellation means stop, not degrade.
        let ctx = QueryContext::unbounded()
            .with_cancellation(token)
            .degrade_to_partial();
        let err = e
            .run_with("SELECT WORKERS FOR TASK 'btree' USING vsm", &ctx)
            .unwrap_err();
        assert_eq!(err, QueryError::Cancelled);
        assert_eq!(metrics.snapshot().counter("query", "cancelled"), Some(1));
    }

    #[test]
    fn expired_deadline_errors_under_the_default_policy() {
        let mut e = seeded_engine();
        let metrics = snapshot_obs(&mut e);
        let ctx = QueryContext::unbounded().with_deadline(Duration::ZERO);
        let err = e
            .run_with("SELECT WORKERS FOR TASK 'btree' USING vsm", &ctx)
            .unwrap_err();
        assert_eq!(err, QueryError::DeadlineExceeded);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("query", "deadline_exceeded"), Some(1));
        assert_eq!(snap.counter("query", "degraded"), None);
    }

    #[test]
    fn expired_deadline_degrades_a_select_when_asked() {
        let mut e = seeded_engine();
        let metrics = snapshot_obs(&mut e);
        let ctx = QueryContext::unbounded()
            .with_deadline(Duration::ZERO)
            .degrade_to_partial();
        let out = e
            .run_with("SELECT WORKERS FOR TASK 'btree' USING vsm", &ctx)
            .unwrap();
        let QueryOutput::Workers(table) = out else {
            panic!("expected workers")
        };
        assert!(table.degraded, "expired before any scoring: empty prefix");
        assert!(table.is_empty());
        assert!(table.elapsed.is_some(), "contextual runs are timed");
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("query", "degraded"), Some(1));
        assert_eq!(snap.counter("query", "deadline_exceeded"), None);
    }

    #[test]
    fn mutations_never_degrade() {
        let mut e = seeded_engine();
        let ctx = QueryContext::unbounded()
            .with_deadline(Duration::ZERO)
            .degrade_to_partial();
        let err = e.run_with("INSERT WORKER 'late'", &ctx).unwrap_err();
        assert_eq!(err, QueryError::DeadlineExceeded);
        assert_eq!(e.db().num_workers(), 2, "no partial mutation happened");
    }

    #[test]
    fn row_budget_yields_a_partial_prefix_under_partial_policy() {
        let mut e = seeded_engine();
        e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
        // Budget 0: the first kernel chunk is refused, so the TDPM ranking
        // comes back as an honest empty prefix.
        let ctx = QueryContext::unbounded()
            .with_row_budget(0)
            .degrade_to_partial();
        let out = e
            .run_with("SELECT WORKERS FOR TASK 'btree index' LIMIT 2", &ctx)
            .unwrap();
        let QueryOutput::Workers(table) = out else {
            panic!("expected workers")
        };
        assert!(table.degraded);
        assert!(table.is_empty());

        // A budget large enough for the whole pool changes nothing.
        let ctx = QueryContext::unbounded().with_row_budget(1_000_000);
        let QueryOutput::Workers(full) = e
            .run_with("SELECT WORKERS FOR TASK 'btree index' LIMIT 2", &ctx)
            .unwrap()
        else {
            panic!("expected workers")
        };
        assert!(!full.degraded);
        assert_eq!(full.len(), 2);
    }

    #[test]
    fn budget_errors_under_the_default_policy() {
        let mut e = seeded_engine();
        let ctx = QueryContext::unbounded().with_row_budget(0);
        let err = e
            .run_with("SELECT WORKERS FOR TASK 'btree' USING vsm", &ctx)
            .unwrap_err();
        assert_eq!(err, QueryError::BudgetExhausted);
    }

    #[test]
    fn never_firing_context_is_bit_identical_to_the_plain_path() {
        let mut e = seeded_engine();
        e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
        for backend in ["tdpm", "vsm", "drm", "tspm"] {
            let stmt =
                format!("SELECT WORKERS FOR TASK 'btree index buffer' LIMIT 2 USING {backend}");
            let QueryOutput::Workers(plain) = e.run(&stmt).unwrap() else {
                panic!("expected workers")
            };
            let ctx = QueryContext::unbounded()
                .with_deadline(Duration::from_secs(3600))
                .with_row_budget(1 << 40)
                .with_cancellation(CancelToken::new());
            let QueryOutput::Workers(guarded) = e.run_with(&stmt, &ctx).unwrap() else {
                panic!("expected workers")
            };
            assert!(!guarded.degraded, "{backend}");
            assert_eq!(guarded.len(), plain.len(), "{backend}");
            for (a, b) in guarded.iter().zip(&plain) {
                assert_eq!(a.worker, b.worker, "{backend}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "{backend}");
            }
            assert!(guarded.elapsed.is_some() && plain.elapsed.is_none());
        }
    }

    // ---- admission control ----------------------------------------------

    #[test]
    fn admission_sheds_and_recovers() {
        let mut e = seeded_engine();
        let metrics = snapshot_obs(&mut e);
        e.set_admission(Some(crate::admission::AdmissionConfig {
            max_concurrent: 1,
            max_queue: 0,
            queue_timeout: Duration::from_millis(5),
        }));
        // Occupy the only slot from outside, as a concurrent query would.
        let ctl = StdArc::clone(e.admission().expect("admission installed"));
        let held = ctl.admit().expect("slot");
        let err = e
            .run("SELECT WORKERS FOR TASK 'btree' USING vsm")
            .unwrap_err();
        assert!(
            matches!(
                err,
                QueryError::Admission(crate::admission::AdmissionError::Shed { .. })
            ),
            "{err}"
        );
        drop(held);
        let QueryOutput::Workers(table) =
            e.run("SELECT WORKERS FOR TASK 'btree' USING vsm").unwrap()
        else {
            panic!("expected workers")
        };
        assert_eq!(table.queue_wait, Some(Duration::ZERO), "no queueing");
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("query", "admission_shed"), Some(1));
        assert_eq!(snap.counter("query", "admission_admitted"), Some(1));
        assert_eq!(snap.counter("query", "admission_queued"), None);
        assert_eq!(
            snap.histogram("query", "queue_wait_seconds")
                .map(|h| h.count),
            Some(1)
        );
    }

    #[test]
    fn admission_queue_timeout_is_typed() {
        let mut e = seeded_engine();
        e.set_admission(Some(crate::admission::AdmissionConfig {
            max_concurrent: 1,
            max_queue: 4,
            queue_timeout: Duration::from_millis(5),
        }));
        let ctl = StdArc::clone(e.admission().expect("admission installed"));
        let held = ctl.admit().expect("slot");
        let err = e.run("SHOW STATS").unwrap_err();
        assert!(
            matches!(
                err,
                QueryError::Admission(crate::admission::AdmissionError::QueueTimeout { .. })
            ),
            "{err}"
        );
        drop(held);
        assert!(e.run("SHOW STATS").is_ok());
    }

    // ---- fault injection + retry ----------------------------------------

    fn fast_retry() -> crate::RetryPolicy {
        crate::RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
        }
    }

    #[test]
    fn armed_transient_faults_exhaust_retries_deterministically() {
        let mut e = seeded_engine();
        let metrics = snapshot_obs(&mut e);
        e.set_retry_policy(fast_retry());
        e.set_fault_injection(Some(
            crowd_sim::QueryFaultPlan::new(17).with_transient_error(1.0),
        ));
        let err = e.run("INSERT WORKER 'x'").unwrap_err();
        let QueryError::RetriesExhausted { attempts, last } = err else {
            panic!("expected RetriesExhausted")
        };
        assert_eq!(attempts, 4);
        assert!(last.contains("injected"), "{last}");
        assert_eq!(e.db().num_workers(), 2, "the mutation never landed");
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("query", "faults_injected"), Some(4));
        assert_eq!(snap.counter("query", "retries"), Some(3));

        // Disarming restores clean execution.
        e.set_fault_injection(None);
        e.run("INSERT WORKER 'x'").unwrap();
        assert_eq!(e.db().num_workers(), 3);
    }

    #[test]
    fn latency_faults_stall_but_never_corrupt() {
        let mut e = seeded_engine();
        let metrics = snapshot_obs(&mut e);
        e.set_fault_injection(Some(
            crowd_sim::QueryFaultPlan::new(42)
                .with_latency(1.0)
                .with_latency_delay(Duration::from_micros(50)),
        ));
        e.run("INSERT WORKER 'slow'").unwrap();
        assert_eq!(e.db().num_workers(), 3);
        let snap = metrics.snapshot();
        assert!(snap.counter("query", "faults_injected").unwrap_or(0) >= 1);
        assert_eq!(snap.counter("query", "retries"), None, "stalls, not errors");
    }
}
