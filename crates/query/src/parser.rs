//! Recursive-descent parser for the crowd-query language.

use crate::ast::{BackendName, ShowTarget, Statement};
use crate::lexer::{lex_spanned, SpannedToken, Token};
use crate::QueryError;
use crowd_store::{TaskId, WorkerId};

/// Parses one statement.
pub fn parse(input: &str) -> Result<Statement, QueryError> {
    let tokens = lex_spanned(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end: input.len(),
    };
    let stmt = p.statement()?;
    p.expect_end()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    /// Byte length of the input: the position end-of-statement errors point
    /// at (one past the last byte).
    end: usize,
}

impl Parser {
    fn statement(&mut self) -> Result<Statement, QueryError> {
        let at = self.peek_position();
        let head = self.expect_word("a statement keyword")?;
        match head.to_ascii_uppercase().as_str() {
            "INSERT" => self.insert(),
            "ASSIGN" => self.assign(),
            "FEEDBACK" => self.feedback(),
            "ANSWER" => self.answer(),
            "TRAIN" => self.train(),
            "SELECT" => self.select(),
            "SHOW" => self.show(),
            "EXPLAIN" => Ok(Statement::Explain(Box::new(self.statement()?))),
            other => Err(self.err_at(
                at,
                "INSERT, ASSIGN, FEEDBACK, ANSWER, TRAIN, SELECT, SHOW or EXPLAIN",
                &format!("'{other}'"),
            )),
        }
    }

    fn insert(&mut self) -> Result<Statement, QueryError> {
        let at = self.peek_position();
        let kind = self.expect_word("WORKER or TASK")?;
        match kind.to_ascii_uppercase().as_str() {
            "WORKER" => Ok(Statement::InsertWorker {
                handle: self.expect_string("a quoted worker handle")?,
            }),
            "TASK" => Ok(Statement::InsertTask {
                text: self.expect_string("a quoted task text")?,
            }),
            other => Err(self.err_at(at, "WORKER or TASK", &format!("'{other}'"))),
        }
    }

    fn assign(&mut self) -> Result<Statement, QueryError> {
        self.expect_keyword("WORKER")?;
        let worker = WorkerId(self.expect_u32("a worker id")?);
        self.expect_keyword("TO")?;
        self.expect_keyword("TASK")?;
        let task = TaskId(self.expect_u32("a task id")?);
        Ok(Statement::Assign { worker, task })
    }

    fn feedback(&mut self) -> Result<Statement, QueryError> {
        self.expect_keyword("WORKER")?;
        let worker = WorkerId(self.expect_u32("a worker id")?);
        self.expect_keyword("ON")?;
        self.expect_keyword("TASK")?;
        let task = TaskId(self.expect_u32("a task id")?);
        self.expect_keyword("SCORE")?;
        let score = self.expect_number("a score")?;
        Ok(Statement::Feedback {
            worker,
            task,
            score,
        })
    }

    fn answer(&mut self) -> Result<Statement, QueryError> {
        self.expect_keyword("WORKER")?;
        let worker = WorkerId(self.expect_u32("a worker id")?);
        self.expect_keyword("ON")?;
        self.expect_keyword("TASK")?;
        let task = TaskId(self.expect_u32("a task id")?);
        self.expect_keyword("TEXT")?;
        let text = self.expect_string("a quoted answer text")?;
        Ok(Statement::Answer { worker, task, text })
    }

    fn train(&mut self) -> Result<Statement, QueryError> {
        self.expect_keyword("MODEL")?;
        let mut categories = 10usize;
        if self.peek_keyword("WITH") {
            self.advance();
            categories = self.expect_integer("a category count")? as usize;
            self.expect_keyword("CATEGORIES")?;
        }
        Ok(Statement::TrainModel { categories })
    }

    fn select(&mut self) -> Result<Statement, QueryError> {
        self.expect_keyword("WORKERS")?;
        self.expect_keyword("FOR")?;
        self.expect_keyword("TASK")?;
        let text = self.expect_string("a quoted task text")?;
        let mut limit = 1usize;
        let mut backend = BackendName::default();
        let mut min_group = None;
        // crowd-lint: allow(wait-guard-checkpoint-loop) -- input-bounded: every arm either consumes a clause token or breaks; the token stream is finite
        loop {
            if self.peek_keyword("LIMIT") {
                self.advance();
                limit = self.expect_integer("a limit")? as usize;
            } else if self.peek_keyword("USING") {
                self.advance();
                // Any identifier is accepted here; the engine resolves it
                // against its backend registry and rejects unknown names
                // with the list of registered backends.
                let name = self.expect_word("a backend name")?;
                backend = BackendName::new(&name);
            } else if self.peek_keyword("WHERE") {
                self.advance();
                self.expect_keyword("GROUP")?;
                self.expect_token(Token::Ge, "'>='")?;
                min_group = Some(self.expect_integer("a group threshold")? as usize);
            } else {
                break;
            }
        }
        Ok(Statement::SelectWorkers {
            text,
            limit,
            backend,
            min_group,
        })
    }

    fn show(&mut self) -> Result<Statement, QueryError> {
        let at = self.peek_position();
        let what = self.expect_word("STATS, WORKER, TASK, GROUPS or SIMILAR")?;
        let target = match what.to_ascii_uppercase().as_str() {
            "STATS" => ShowTarget::Stats,
            "WORKER" => ShowTarget::Worker(WorkerId(self.expect_u32("a worker id")?)),
            "TASK" => ShowTarget::Task(TaskId(self.expect_u32("a task id")?)),
            "GROUPS" => {
                let mut thresholds = vec![self.expect_integer("a threshold")? as usize];
                while matches!(self.peek(), Some(Token::Comma)) {
                    self.advance();
                    thresholds.push(self.expect_integer("a threshold")? as usize);
                }
                ShowTarget::Groups(thresholds)
            }
            "SIMILAR" => {
                let text = self.expect_string("a quoted query text")?;
                let mut limit = 5usize;
                if self.peek_keyword("LIMIT") {
                    self.advance();
                    limit = self.expect_integer("a limit")? as usize;
                }
                ShowTarget::Similar { text, limit }
            }
            other => {
                return Err(self.err_at(
                    at,
                    "STATS, WORKER, TASK, GROUPS or SIMILAR",
                    &format!("'{other}'"),
                ))
            }
        };
        Ok(Statement::Show(target))
    }

    // --- primitives ----------------------------------------------------------

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    /// Byte position of the next token, or one past the input's last byte
    /// when the statement ended early.
    fn peek_position(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.end, |t| t.position)
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn expect_token(&mut self, token: Token, expected: &str) -> Result<(), QueryError> {
        match self.peek() {
            Some(t) if *t == token => {
                self.advance();
                Ok(())
            }
            other => Err(self.err(expected, &describe_opt(other))),
        }
    }

    fn expect_word(&mut self, expected: &str) -> Result<String, QueryError> {
        match self.peek().cloned() {
            Some(Token::Word(w)) => {
                self.advance();
                Ok(w)
            }
            other => Err(self.err(expected, &describe_opt(other.as_ref()))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        let at = self.peek_position();
        let w = self.expect_word(kw)?;
        if w.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(self.err_at(at, kw, &format!("'{w}'")))
        }
    }

    fn expect_string(&mut self, expected: &str) -> Result<String, QueryError> {
        match self.peek().cloned() {
            Some(Token::Str(s)) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.err(expected, &describe_opt(other.as_ref()))),
        }
    }

    fn expect_number(&mut self, expected: &str) -> Result<f64, QueryError> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.advance();
                Ok(n)
            }
            other => Err(self.err(expected, &describe_opt(other.as_ref()))),
        }
    }

    /// An integer that must fit the `u32` id space; out-of-range input is a
    /// parse error, never a silent wrap.
    fn expect_u32(&mut self, expected: &str) -> Result<u32, QueryError> {
        let at = self.peek_position();
        let n = self.expect_integer(expected)?;
        u32::try_from(n)
            .map_err(|_| self.err_at(at, expected, &format!("out-of-range integer {n}")))
    }

    fn expect_integer(&mut self, expected: &str) -> Result<u64, QueryError> {
        let at = self.peek_position();
        let n = self.expect_number(expected)?;
        if n.fract() != 0.0 || n < 0.0 || n > u32::MAX as f64 {
            return Err(self.err_at(
                at,
                &format!("{expected} (a non-negative integer)"),
                &format!("number {n}"),
            ));
        }
        Ok(n as u64)
    }

    fn expect_end(&mut self) -> Result<(), QueryError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.err("end of statement", &t.describe())),
        }
    }

    /// A parse error pointing at the next (unconsumed) token.
    fn err(&self, expected: &str, found: &str) -> QueryError {
        self.err_at(self.peek_position(), expected, found)
    }

    /// A parse error pointing at an explicit byte position — used when the
    /// offending token was already consumed (keyword mismatches, range
    /// checks), so `peek_position` would blame the token after it.
    fn err_at(&self, position: usize, expected: &str, found: &str) -> QueryError {
        QueryError::Parse {
            position,
            expected: expected.into(),
            found: found.into(),
        }
    }
}

fn describe_opt(t: Option<&Token>) -> String {
    t.map(Token::describe)
        .unwrap_or_else(|| "end of statement".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_statements() {
        assert_eq!(
            parse("INSERT WORKER 'ada'").unwrap(),
            Statement::InsertWorker {
                handle: "ada".into()
            }
        );
        assert_eq!(
            parse("insert task 'b+ tree question'").unwrap(),
            Statement::InsertTask {
                text: "b+ tree question".into()
            }
        );
    }

    #[test]
    fn assign_and_feedback() {
        assert_eq!(
            parse("ASSIGN WORKER 3 TO TASK 7").unwrap(),
            Statement::Assign {
                worker: WorkerId(3),
                task: TaskId(7)
            }
        );
        assert_eq!(
            parse("FEEDBACK WORKER 3 ON TASK 7 SCORE 4.5").unwrap(),
            Statement::Feedback {
                worker: WorkerId(3),
                task: TaskId(7),
                score: 4.5
            }
        );
    }

    #[test]
    fn answer_statement() {
        assert_eq!(
            parse("ANSWER WORKER 1 ON TASK 2 TEXT 'split at the median'").unwrap(),
            Statement::Answer {
                worker: WorkerId(1),
                task: TaskId(2),
                text: "split at the median".into()
            }
        );
    }

    #[test]
    fn train_with_default_and_explicit_k() {
        assert_eq!(
            parse("TRAIN MODEL").unwrap(),
            Statement::TrainModel { categories: 10 }
        );
        assert_eq!(
            parse("TRAIN MODEL WITH 25 CATEGORIES").unwrap(),
            Statement::TrainModel { categories: 25 }
        );
    }

    #[test]
    fn select_minimal_and_full() {
        assert_eq!(
            parse("SELECT WORKERS FOR TASK 'q'").unwrap(),
            Statement::SelectWorkers {
                text: "q".into(),
                limit: 1,
                backend: BackendName::default(),
                min_group: None
            }
        );
        assert_eq!(
            parse("SELECT WORKERS FOR TASK 'q' LIMIT 3 USING vsm WHERE GROUP >= 5").unwrap(),
            Statement::SelectWorkers {
                text: "q".into(),
                limit: 3,
                backend: BackendName::new("vsm"),
                min_group: Some(5)
            }
        );
    }

    #[test]
    fn using_accepts_any_identifier_and_lowercases_it() {
        // Backend names are resolved by the engine's registry, not the
        // parser — arbitrary identifiers parse fine and are canonicalized.
        let stmt = parse("SELECT WORKERS FOR TASK 'q' USING MyBackend").unwrap();
        assert_eq!(
            stmt,
            Statement::SelectWorkers {
                text: "q".into(),
                limit: 1,
                backend: BackendName::new("mybackend"),
                min_group: None
            }
        );
    }

    #[test]
    fn select_clause_order_is_flexible() {
        let a = parse("SELECT WORKERS FOR TASK 'q' USING drm LIMIT 2").unwrap();
        let b = parse("SELECT WORKERS FOR TASK 'q' LIMIT 2 USING drm").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn show_statements() {
        assert_eq!(
            parse("SHOW STATS").unwrap(),
            Statement::Show(ShowTarget::Stats)
        );
        assert_eq!(
            parse("SHOW WORKER 4").unwrap(),
            Statement::Show(ShowTarget::Worker(WorkerId(4)))
        );
        assert_eq!(
            parse("SHOW TASK 9").unwrap(),
            Statement::Show(ShowTarget::Task(TaskId(9)))
        );
        assert_eq!(
            parse("SHOW GROUPS 1, 5, 9").unwrap(),
            Statement::Show(ShowTarget::Groups(vec![1, 5, 9]))
        );
    }

    #[test]
    fn show_similar() {
        assert_eq!(
            parse("SHOW SIMILAR 'btree split' LIMIT 3").unwrap(),
            Statement::Show(ShowTarget::Similar {
                text: "btree split".into(),
                limit: 3
            })
        );
        // Default limit.
        assert_eq!(
            parse("SHOW SIMILAR 'x'").unwrap(),
            Statement::Show(ShowTarget::Similar {
                text: "x".into(),
                limit: 5
            })
        );
    }

    #[test]
    fn explain_wraps_any_statement() {
        assert_eq!(
            parse("EXPLAIN SHOW STATS").unwrap(),
            Statement::Explain(Box::new(Statement::Show(ShowTarget::Stats)))
        );
        assert_eq!(
            parse("explain select workers for task 'q' limit 2").unwrap(),
            Statement::Explain(Box::new(Statement::SelectWorkers {
                text: "q".into(),
                limit: 2,
                backend: BackendName::default(),
                min_group: None
            }))
        );
        // EXPLAIN EXPLAIN nests.
        assert_eq!(
            parse("EXPLAIN EXPLAIN SHOW STATS").unwrap(),
            Statement::Explain(Box::new(Statement::Explain(Box::new(Statement::Show(
                ShowTarget::Stats
            )))))
        );
        // A bare EXPLAIN still wants a statement.
        let err = parse("EXPLAIN").unwrap_err();
        assert!(err.to_string().contains("statement keyword"), "{err}");
    }

    #[test]
    fn errors_are_descriptive() {
        let e = parse("SELECT WORKERS FOR TASK").unwrap_err();
        assert!(e.to_string().contains("quoted task text"), "{e}");
        let e = parse("FEEDBACK WORKER x").unwrap_err();
        assert!(e.to_string().contains("worker id"), "{e}");
        let e = parse("SELECT WORKERS FOR TASK 'q' USING 42").unwrap_err();
        assert!(e.to_string().contains("backend name"), "{e}");
        let e = parse("SHOW NOTHING").unwrap_err();
        assert!(e.to_string().contains("STATS"), "{e}");
    }

    #[test]
    fn parse_errors_carry_byte_positions() {
        // The offending token's own offset: `42` starts at byte 24.
        let input = "SELECT WORKERS FOR TASK 42";
        let QueryError::Parse { position, .. } = parse(input).unwrap_err() else {
            panic!("expected a parse error");
        };
        assert_eq!(&input[position..], "42");

        // Keyword mismatch blames the word that was consumed, not the token
        // after it: `ON` where `TO` belongs.
        let input = "ASSIGN WORKER 1 ON TASK 2";
        let QueryError::Parse { position, .. } = parse(input).unwrap_err() else {
            panic!("expected a parse error");
        };
        assert_eq!(&input[position..], "ON TASK 2");

        // A wrong head keyword points at byte 0.
        let QueryError::Parse { position, .. } = parse("FROB STATS").unwrap_err() else {
            panic!("expected a parse error");
        };
        assert_eq!(position, 0);

        // Truncated statements point one past the last byte.
        let input = "SELECT WORKERS FOR TASK";
        let QueryError::Parse { position, .. } = parse(input).unwrap_err() else {
            panic!("expected a parse error");
        };
        assert_eq!(position, input.len());

        // Trailing garbage points at the first extra token.
        let input = "SHOW STATS extra";
        let QueryError::Parse { position, .. } = parse(input).unwrap_err() else {
            panic!("expected a parse error");
        };
        assert_eq!(&input[position..], "extra");

        // Positions are byte offsets even after multibyte text: the display
        // message names the byte so callers can slice the input directly.
        let input = "INSERT TASK 'café' oops";
        let err = parse(input).unwrap_err();
        let QueryError::Parse { position, .. } = &err else {
            panic!("expected a parse error");
        };
        assert_eq!(&input[*position..], "oops");
        assert!(
            err.to_string().contains(&format!("byte {position}")),
            "{err}"
        );
    }

    #[test]
    fn range_errors_blame_the_number_itself() {
        let input = "SHOW WORKER -1";
        let QueryError::Parse { position, .. } = parse(input).unwrap_err() else {
            panic!("expected a parse error");
        };
        assert_eq!(&input[position..], "-1");
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse("SHOW STATS extra").is_err());
    }

    #[test]
    fn fractional_ids_rejected() {
        assert!(parse("ASSIGN WORKER 1.5 TO TASK 2").is_err());
        assert!(parse("SHOW WORKER -1").is_err());
    }
}
