//! Per-query execution context: deadline, cancellation, work budget.
//!
//! A [`QueryContext`] travels with one statement (or one fused sweep)
//! through the executor. It is checked at every plan-node boundary and —
//! through [`QueryContext::guard`], a [`crowd_math::WorkGuard`] — at every
//! chunk boundary *inside* the dense scoring kernels, so a late, cancelled
//! or over-budget query stops within one checkpoint interval instead of
//! running a 100k-candidate Score to completion. Stopping is cooperative
//! and clean: shared engine state (snapshots, caches, storage) is never
//! left mid-update, because checkpoints only sit between whole chunks of
//! pure scoring work.
//!
//! What happens after an interruption is the query's [`DegradePolicy`]:
//! `Fail` maps it to a typed [`crate::QueryError`]; `Partial` lets a
//! `SELECT` return the ranking prefix that was actually scored, marked
//! degraded (mirroring the platform manager's `degraded_epochs` pattern —
//! serve something honest rather than nothing). Cancellation is always an
//! error: the caller asked for the query to stop, not for its prefix.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cooperative cancellation flag.
///
/// Clone the token, hand one copy to the query (via
/// [`QueryContext::with_cancellation`]) and keep the other; calling
/// [`CancelToken::cancel`] from any thread stops the query at its next
/// checkpoint.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; visible to every clone of the token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// What a query wants when its deadline or budget fires mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Surface a typed error ([`crate::QueryError::DeadlineExceeded`] /
    /// [`crate::QueryError::BudgetExhausted`]). The default.
    #[default]
    Fail,
    /// Let `SELECT` return the honestly-scored prefix, marked degraded in
    /// the result table. Non-select statements and cancellation still
    /// error: there is no meaningful partial mutation or partial cancel.
    Partial,
}

impl fmt::Display for DegradePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradePolicy::Fail => "error",
            DegradePolicy::Partial => "partial",
        })
    }
}

/// Why a context stopped a query, in precedence order: an explicit cancel
/// wins over an expired deadline, which wins over an exhausted budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interruption {
    /// The query's [`CancelToken`] fired.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The row/work budget ran out.
    BudgetExhausted,
}

/// The interruptible state of one query, shared between the context and
/// every [`CtxGuard`] handle cloned from it.
///
/// Lives behind an `Arc` so guards are owned `'static` values: the
/// persistent scoring pool's chunk jobs each carry a cloned handle instead
/// of borrowing the context across threads (DESIGN §10a).
#[derive(Debug, Default)]
struct CtxState {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    /// Remaining work units (candidate rows scored; rows × queries in the
    /// batched kernel). `None` = unmetered.
    budget: Option<AtomicU64>,
    /// Latched by the guard when a charge overdraws the budget, so
    /// node-boundary checks see the exhaustion without racing on "exactly
    /// zero remaining after finishing all work".
    budget_hit: AtomicBool,
}

/// Snapshot clone, used only by `Arc::make_mut` in the builders (which run
/// before the context is ever shared, so the snapshot is of an idle state).
impl Clone for CtxState {
    fn clone(&self) -> Self {
        CtxState {
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            budget: self
                .budget
                .as_ref()
                .map(|b| AtomicU64::new(b.load(Ordering::SeqCst))),
            budget_hit: AtomicBool::new(self.budget_hit.load(Ordering::SeqCst)),
        }
    }
}

impl CtxState {
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|at| Instant::now() >= at)
    }

    /// Charges `units` against the budget; `false` latches `budget_hit`
    /// and refuses. Overdraw empties the budget rather than splitting a
    /// chunk: the guard stops at the boundary anyway.
    fn try_charge(&self, units: u64) -> bool {
        let Some(budget) = &self.budget else {
            return true;
        };
        if budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(units))
            .is_ok()
        {
            return true;
        }
        budget.store(0, Ordering::SeqCst);
        self.budget_hit.store(true, Ordering::SeqCst);
        false
    }
}

/// Deadline, cancellation token and work budget for one query execution.
///
/// The default ([`QueryContext::unbounded`]) constrains nothing and adds
/// nothing to the hot path beyond two atomic loads per checkpoint; every
/// constraint is opt-in through the builder methods. The context is `Sync`
/// and its interruptible state is `Arc`-shared, so the persistent scoring
/// pool's chunk jobs each poll an owned [`CtxGuard`] handle.
#[derive(Debug, Default)]
pub struct QueryContext {
    state: Arc<CtxState>,
    policy: DegradePolicy,
}

impl QueryContext {
    /// A context with no deadline, no cancellation and no budget.
    pub fn unbounded() -> Self {
        QueryContext::default()
    }

    /// Stops the query `timeout` from now.
    pub fn with_deadline(self, timeout: Duration) -> Self {
        self.with_deadline_at(Instant::now() + timeout)
    }

    /// Stops the query at an absolute instant (what a service layer that
    /// parsed a wire deadline would pass).
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        Arc::make_mut(&mut self.state).deadline = Some(at);
        self
    }

    /// Attaches a cancellation token; the caller keeps a clone.
    pub fn with_cancellation(mut self, token: CancelToken) -> Self {
        Arc::make_mut(&mut self.state).cancel = Some(token);
        self
    }

    /// Meters the query to at most `rows` work units (candidate rows
    /// scored; the batched kernel charges rows × queries per block).
    pub fn with_row_budget(mut self, rows: u64) -> Self {
        Arc::make_mut(&mut self.state).budget = Some(AtomicU64::new(rows));
        self
    }

    /// Selects [`DegradePolicy::Partial`]: deadline/budget expiry returns
    /// the scored prefix marked degraded instead of an error.
    pub fn degrade_to_partial(mut self) -> Self {
        self.policy = DegradePolicy::Partial;
        self
    }

    /// The query's degradation policy.
    pub fn policy(&self) -> DegradePolicy {
        self.policy
    }

    /// `true` when the context can never interrupt anything — the executor
    /// uses this to keep fully unconstrained queries on the historical
    /// batched code paths.
    pub fn is_unbounded(&self) -> bool {
        self.state.deadline.is_none() && self.state.cancel.is_none() && self.state.budget.is_none()
    }

    /// The node-boundary checkpoint: has anything already interrupted this
    /// query? Budget exhaustion only counts once a charge actually failed
    /// (a budget spent to exactly zero by completed work is not an
    /// interruption).
    pub fn check(&self) -> Result<(), Interruption> {
        if self.state.cancelled() {
            return Err(Interruption::Cancelled);
        }
        if self.state.deadline_passed() {
            return Err(Interruption::DeadlineExceeded);
        }
        if self.state.budget_hit.load(Ordering::SeqCst) {
            return Err(Interruption::BudgetExhausted);
        }
        Ok(())
    }

    /// Checkpoint + charge in one step — what the per-query baseline loop
    /// calls before scoring each query against the pool.
    pub fn consume(&self, units: u64) -> Result<(), Interruption> {
        self.check()?;
        if self.state.try_charge(units) {
            Ok(())
        } else {
            Err(Interruption::BudgetExhausted)
        }
    }

    /// Classifies why a guarded scan came back incomplete, in precedence
    /// order (cancel > deadline > budget).
    pub fn interruption(&self) -> Interruption {
        match self.check() {
            Err(i) => i,
            // The guard refused a charge without latching anything else:
            // that is budget exhaustion by definition.
            Ok(()) => Interruption::BudgetExhausted,
        }
    }

    /// This context as a [`crowd_math::WorkGuard`] for the chunked scoring
    /// kernels: each chunk is admitted only if the query is still live and
    /// the chunk's units fit the remaining budget.
    ///
    /// The guard is an owned, cloneable `'static` handle onto the context's
    /// shared state, so the persistent scoring pool's chunk jobs can each
    /// carry their own copy while all charging the same budget.
    pub fn guard(&self) -> CtxGuard {
        CtxGuard(Arc::clone(&self.state))
    }
}

/// Owned [`crowd_math::WorkGuard`] handle onto a [`QueryContext`] (see
/// [`QueryContext::guard`]). `Clone + Send + 'static`: every clone polls
/// and charges the same shared state, which is what lets one query's
/// budget/deadline/cancel be observed from every pool worker at once.
#[derive(Debug, Clone)]
pub struct CtxGuard(Arc<CtxState>);

impl crowd_math::WorkGuard for CtxGuard {
    fn consume(&self, units: u64) -> bool {
        let st = &self.0;
        if st.cancelled() || st.deadline_passed() || st.budget_hit.load(Ordering::SeqCst) {
            return false;
        }
        st.try_charge(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_math::WorkGuard as _;

    #[test]
    fn unbounded_context_never_interrupts() {
        let ctx = QueryContext::unbounded();
        assert!(ctx.is_unbounded());
        assert_eq!(ctx.policy(), DegradePolicy::Fail);
        assert!(ctx.check().is_ok());
        assert!(ctx.guard().consume(u64::MAX));
        assert!(ctx.consume(1_000_000).is_ok());
    }

    #[test]
    fn cancellation_wins_over_everything() {
        let token = CancelToken::new();
        let ctx = QueryContext::unbounded()
            .with_deadline(Duration::ZERO)
            .with_row_budget(0)
            .with_cancellation(token.clone());
        assert!(!ctx.is_unbounded());
        token.cancel();
        assert_eq!(ctx.check(), Err(Interruption::Cancelled));
        assert!(!ctx.guard().consume(1));
        assert_eq!(ctx.interruption(), Interruption::Cancelled);
    }

    #[test]
    fn expired_deadline_interrupts() {
        let ctx = QueryContext::unbounded().with_deadline(Duration::ZERO);
        assert_eq!(ctx.check(), Err(Interruption::DeadlineExceeded));
        assert!(!ctx.guard().consume(1));
    }

    #[test]
    fn live_deadline_does_not_interrupt() {
        let ctx = QueryContext::unbounded().with_deadline(Duration::from_secs(3600));
        assert!(ctx.check().is_ok());
        assert!(ctx.guard().consume(10));
    }

    #[test]
    fn budget_latches_only_on_overdraw() {
        let ctx = QueryContext::unbounded().with_row_budget(100);
        let guard = ctx.guard();
        assert!(guard.consume(60));
        assert!(guard.consume(40), "spending to exactly zero is fine");
        assert!(ctx.check().is_ok(), "no overdraw happened yet");
        assert!(!guard.consume(1), "the next chunk overdraws");
        assert_eq!(ctx.check(), Err(Interruption::BudgetExhausted));
        assert_eq!(ctx.interruption(), Interruption::BudgetExhausted);
    }

    #[test]
    fn consume_charges_and_classifies() {
        let ctx = QueryContext::unbounded().with_row_budget(5);
        assert!(ctx.consume(5).is_ok());
        assert_eq!(ctx.consume(1), Err(Interruption::BudgetExhausted));
    }

    #[test]
    fn policy_builder_selects_partial() {
        let ctx = QueryContext::unbounded().degrade_to_partial();
        assert_eq!(ctx.policy(), DegradePolicy::Partial);
        assert_eq!(DegradePolicy::Partial.to_string(), "partial");
        assert_eq!(DegradePolicy::Fail.to_string(), "error");
    }
}
