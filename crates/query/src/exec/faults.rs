//! The storage boundary's failure discipline: bounded retry + seeded
//! fault injection.
//!
//! Every storage operation the executor performs (candidate-pool reads at
//! `Scan`, mutations at `Mutate`) funnels through [`with_retries`], which
//! layers three behaviours in one audited place:
//!
//! 1. **Checkpointing** — the query's [`QueryContext`] is consulted before
//!    every attempt, so a cancelled or expired query never burns its
//!    remaining time in a backoff loop.
//! 2. **Bounded-backoff retry** — *transient* failures are retried up to
//!    [`RetryPolicy::max_retries`] times with exponential backoff, then
//!    surfaced as [`QueryError::RetriesExhausted`]. Permanent errors (every
//!    real [`crowd_store::StoreError`] today — see
//!    `StoreError::is_transient`) surface immediately.
//! 3. **Deterministic fault injection** — an optional [`FaultInjector`],
//!    driven by a seeded [`crowd_sim::QueryFaultPlan`], perturbs the
//!    operation *before* it touches real storage: transient errors and
//!    detected short reads become retryable failures, latency faults stall
//!    the operation. The schedule depends only on (seed, operation index),
//!    so a chaos run is exactly reproducible.

use crate::exec::context::QueryContext;
use crate::QueryError;
use crowd_obs::Obs;
use crowd_sim::{QueryFault, QueryFaultPlan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How the executor retries transient storage failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts
    /// total).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): exponential from
    /// [`RetryPolicy::base_backoff`], capped at [`RetryPolicy::max_backoff`].
    pub fn backoff(&self, retry: u32) -> Duration {
        let doubled = self.base_backoff.saturating_mul(
            1u32.checked_shl(retry.saturating_sub(1))
                .unwrap_or(u32::MAX),
        );
        doubled.min(self.max_backoff)
    }
}

/// Deterministic fault source for the query layer's storage operations.
///
/// Owns a [`QueryFaultPlan`] and a monotone operation counter; each storage
/// operation (including each retry) draws the next index from the plan.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: QueryFaultPlan,
    ops: AtomicU64,
}

impl FaultInjector {
    pub(crate) fn new(plan: QueryFaultPlan) -> Self {
        FaultInjector {
            plan,
            ops: AtomicU64::new(0),
        }
    }

    /// Draws the fault for the next storage operation. Latency faults are
    /// served here (sleep, then proceed); error-shaped faults return the
    /// failure message for the retry loop. Every injection increments
    /// `query/faults_injected`.
    fn draw(&self, obs: &Obs) -> Option<&'static str> {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        match self.plan.fault_for_op(op) {
            QueryFault::None => None,
            QueryFault::Latency => {
                obs.metrics.counter("query", "faults_injected").add(1);
                std::thread::sleep(self.plan.latency_delay());
                None
            }
            QueryFault::TransientError => {
                obs.metrics.counter("query", "faults_injected").add(1);
                Some("injected transient storage error")
            }
            QueryFault::PartialRead => {
                obs.metrics.counter("query", "faults_injected").add(1);
                Some("storage read returned short (injected partial read)")
            }
        }
    }
}

/// Runs one storage operation under the full failure discipline (see the
/// module docs). `is_transient` classifies *real* errors from `op`;
/// injected faults are always transient by construction.
pub(crate) fn with_retries<T, E>(
    ctx: &QueryContext,
    policy: &RetryPolicy,
    faults: Option<&FaultInjector>,
    obs: &Obs,
    is_transient: impl Fn(&E) -> bool,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, QueryError>
where
    E: std::fmt::Display + Into<QueryError>,
{
    let mut attempts: u32 = 0;
    loop {
        ctx.check().map_err(QueryError::from)?;
        attempts += 1;
        let failure = match faults.and_then(|f| f.draw(obs)) {
            Some(injected) => injected.to_string(),
            None => match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) => e.to_string(),
                Err(e) => return Err(e.into()),
            },
        };
        if attempts > policy.max_retries {
            return Err(QueryError::RetriesExhausted {
                attempts,
                last: failure,
            });
        }
        obs.metrics.counter("query", "retries").add(1);
        std::thread::sleep(policy.backoff(attempts));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(1));
        assert_eq!(p.backoff(2), Duration::from_millis(2));
        assert_eq!(p.backoff(3), Duration::from_millis(4));
        assert_eq!(p.backoff(4), Duration::from_millis(8));
        assert_eq!(p.backoff(5), Duration::from_millis(10), "capped");
        assert_eq!(p.backoff(40), Duration::from_millis(10), "no overflow");
    }

    #[test]
    fn success_passes_through_untouched() {
        let obs = Obs::noop();
        let ctx = QueryContext::unbounded();
        let got: Result<i32, QueryError> = with_retries(
            &ctx,
            &fast_policy(),
            None,
            &obs,
            |_: &QueryError| false,
            || Ok(41),
        );
        assert_eq!(got.expect("clean op succeeds"), 41);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("query", "retries"), None, "no retry counted");
    }

    #[test]
    fn permanent_errors_surface_immediately() {
        let obs = Obs::noop();
        let ctx = QueryContext::unbounded();
        let mut calls = 0;
        let got: Result<i32, QueryError> = with_retries(
            &ctx,
            &fast_policy(),
            None,
            &obs,
            |_: &QueryError| false,
            || {
                calls += 1;
                Err(QueryError::Execution("unknown worker".into()))
            },
        );
        assert_eq!(got, Err(QueryError::Execution("unknown worker".into())));
        assert_eq!(calls, 1, "no retry for a permanent error");
    }

    #[test]
    fn transient_errors_retry_then_exhaust() {
        let obs = Obs::noop();
        let ctx = QueryContext::unbounded();
        let mut calls = 0;
        let got: Result<i32, QueryError> = with_retries(
            &ctx,
            &fast_policy(),
            None,
            &obs,
            |_: &QueryError| true,
            || {
                calls += 1;
                Err(QueryError::Execution("flaky".into()))
            },
        );
        assert_eq!(calls, 4, "initial try + 3 retries");
        match got {
            Err(QueryError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 4);
                assert!(last.contains("flaky"));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("query", "retries"), Some(3));
    }

    #[test]
    fn transient_error_that_heals_succeeds() {
        let obs = Obs::noop();
        let ctx = QueryContext::unbounded();
        let mut calls = 0;
        let got: Result<i32, QueryError> = with_retries(
            &ctx,
            &fast_policy(),
            None,
            &obs,
            |_: &QueryError| true,
            || {
                calls += 1;
                if calls < 3 {
                    Err(QueryError::Execution("flaky".into()))
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(got.expect("heals on third attempt"), 7);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("query", "retries"), Some(2));
    }

    #[test]
    fn cancelled_context_stops_the_retry_loop() {
        let obs = Obs::noop();
        let token = crate::exec::context::CancelToken::new();
        let ctx = QueryContext::unbounded().with_cancellation(token.clone());
        token.cancel();
        let got: Result<i32, QueryError> = with_retries(
            &ctx,
            &fast_policy(),
            None,
            &obs,
            |_: &QueryError| true,
            || Ok(1),
        );
        assert_eq!(got, Err(QueryError::Cancelled));
    }

    #[test]
    fn injected_transient_faults_are_retried_and_counted() {
        let obs = Obs::noop();
        let ctx = QueryContext::unbounded();
        // Every operation fails with an injected transient error.
        let injector = FaultInjector::new(QueryFaultPlan::new(7).with_transient_error(1.0));
        let got: Result<i32, QueryError> = with_retries(
            &ctx,
            &fast_policy(),
            Some(&injector),
            &obs,
            |_: &QueryError| false,
            || Ok(1),
        );
        match got {
            Err(QueryError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 4);
                assert!(last.contains("injected"), "{last}");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("query", "faults_injected"), Some(4));
        assert_eq!(snap.counter("query", "retries"), Some(3));
    }

    #[test]
    fn clean_plan_injects_nothing() {
        let obs = Obs::noop();
        let ctx = QueryContext::unbounded();
        let injector = FaultInjector::new(QueryFaultPlan::new(7));
        for _ in 0..100 {
            let got: Result<i32, QueryError> = with_retries(
                &ctx,
                &fast_policy(),
                Some(&injector),
                &obs,
                |_: &QueryError| false,
                || Ok(1),
            );
            assert_eq!(got.expect("clean plan never interferes"), 1);
        }
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("query", "faults_injected"), None);
    }
}
