//! Plan execution with per-node instrumentation.
//!
//! The executor walks a [`LogicalPlan`]'s nodes in order, moving values
//! between [`VarId`] slots, against the engine's storage, selector
//! registry and projection cache. Every node records its wall-clock under
//! `query/plan_node_seconds_<kind>` so a [`crowd_obs::MetricsSnapshot`]
//! shows where a statement spent its time, node by node.
//!
//! Execution is bit-identical to the pre-plan engine: `Scan` and `Bind`
//! reproduce the historical error precedence (empty candidate pool before
//! unknown backend / missing model), `Project` serves Algorithm-3
//! projections through the same LRU cache (and owns the
//! `select_cache_{hit,miss}` counters), and `Score` — with the `TopK`
//! limit pushed down by the compiler — drives exactly the fused kernels
//! the old code paths called: [`crowd_core::TdpmModel::select_top_k`] /
//! [`select_top_k_batch`](crowd_core::TdpmModel::select_top_k_batch) for
//! TDPM snapshots and [`crowd_select::CrowdSelector::select`] /
//! [`select_batch`](crowd_select::CrowdSelector::select_batch) for
//! everything else.

pub(crate) mod storage;

use crate::ast::BackendName;
use crate::engine::QueryEngine;
use crate::output::{QueryOutput, SelectedWorker};
use crate::plan::{LogicalPlan, PlanNode, VarId};
use crate::QueryError;
use crowd_core::{TaskProjection, TdpmModel};
use crowd_select::{BatchQuery, FittedSelector, RankedWorker};
use crowd_store::WorkerId;
use crowd_text::{tokenize_filtered, BagOfWords};

/// One query after `Project`: its bag of words over the stored vocabulary,
/// plus the Algorithm-3 projection when the bound snapshot is a TDPM model.
pub(crate) struct PreparedQuery {
    bow: BagOfWords,
    projection: Option<TaskProjection>,
}

/// A value flowing through a plan slot.
enum Value {
    /// Candidate pool from `Scan`.
    Candidates(Vec<WorkerId>),
    /// Prepared queries from `Project`.
    Queries(Vec<PreparedQuery>),
    /// Per-query rankings from `Score` / `TopK`.
    Ranked(Vec<Vec<RankedWorker>>),
    /// Per-query result tables from `Merge`.
    Tables(Vec<Vec<SelectedWorker>>),
    /// Backend binding marker from `Bind` (the snapshot lives in engine
    /// state; the marker carries the name downstream nodes resolve it by).
    Bound(BackendName),
    /// A finished statement output (mutations, `TRAIN`, `SHOW`, `EXPLAIN`).
    Out(QueryOutput),
}

fn internal(what: &str) -> QueryError {
    QueryError::Execution(format!("internal plan error: {what}"))
}

fn take(slots: &mut [Option<Value>], var: VarId) -> Result<Value, QueryError> {
    slots
        .get_mut(var.0)
        .and_then(Option::take)
        .ok_or_else(|| internal("read from an empty slot"))
}

/// Executes a plan, returning one [`QueryOutput`] per covered statement
/// (fused `SELECT` plans return one `Workers` output per query, in input
/// order).
pub(crate) fn execute(
    engine: &mut QueryEngine,
    plan: &LogicalPlan,
) -> Result<Vec<QueryOutput>, QueryError> {
    let mut slots: Vec<Option<Value>> = std::iter::repeat_with(|| None).take(plan.slots).collect();
    let mut last: Option<VarId> = None;
    for node in &plan.nodes {
        let started = std::time::Instant::now();
        let value = run_node(engine, node, &mut slots)?;
        engine
            .obs
            .metrics
            .histogram("query", &format!("plan_node_seconds_{}", node.kind()))
            .observe_duration(started.elapsed());
        let out = node.out();
        *slots
            .get_mut(out.0)
            .ok_or_else(|| internal("write to an out-of-range slot"))? = Some(value);
        last = Some(out);
    }
    let Some(last) = last else {
        return Ok(Vec::new());
    };
    match take(&mut slots, last)? {
        Value::Tables(tables) => Ok(tables.into_iter().map(QueryOutput::Workers).collect()),
        Value::Out(output) => Ok(vec![output]),
        _ => Err(internal("plan ended on an intermediate value")),
    }
}

fn run_node(
    engine: &mut QueryEngine,
    node: &PlanNode,
    slots: &mut [Option<Value>],
) -> Result<Value, QueryError> {
    match node {
        PlanNode::Scan { min_group, .. } => {
            Ok(Value::Candidates(engine.candidate_pool(*min_group)?))
        }
        PlanNode::Bind { backend, .. } => {
            engine.ensure_fitted(backend)?;
            Ok(Value::Bound(backend.clone()))
        }
        PlanNode::Project { texts, binding, .. } => {
            let Value::Bound(backend) = take(slots, *binding)? else {
                return Err(internal("Project without a binding"));
            };
            Ok(Value::Queries(prepare_queries(engine, &backend, texts)))
        }
        PlanNode::Score {
            backend,
            k,
            queries,
            candidates,
            ..
        } => {
            let Value::Queries(queries) = take(slots, *queries)? else {
                return Err(internal("Score without prepared queries"));
            };
            let Value::Candidates(pool) = take(slots, *candidates)? else {
                return Err(internal("Score without a candidate pool"));
            };
            let fitted = engine
                .fitted
                .get(backend.as_str())
                .ok_or_else(|| internal("Score without a bound snapshot"))?;
            Ok(Value::Ranked(score_queries(fitted, &queries, &pool, *k)))
        }
        PlanNode::TopK { k, input, .. } => {
            let Value::Ranked(mut ranked) = take(slots, *input)? else {
                return Err(internal("TopK without rankings"));
            };
            // The compiler pushed `k` down into Score, so this truncation
            // is a no-op — kept as the explicit logical boundary (and a
            // guard should a future compiler stop pushing down).
            for ranking in &mut ranked {
                ranking.truncate(*k);
            }
            Ok(Value::Ranked(ranked))
        }
        PlanNode::Merge { input, .. } => {
            let Value::Ranked(ranked) = take(slots, *input)? else {
                return Err(internal("Merge without rankings"));
            };
            Ok(Value::Tables(
                ranked.into_iter().map(|r| engine.to_rows(r)).collect(),
            ))
        }
        PlanNode::Mutate { op, .. } => {
            let output = engine.storage.apply(op)?;
            engine.invalidate(op.invalidates());
            Ok(Value::Out(output))
        }
        PlanNode::Fit {
            backend,
            categories,
            ..
        } => engine.train(backend, *categories).map(Value::Out),
        PlanNode::Inspect { target, .. } => engine.show(target).map(Value::Out),
        PlanNode::Explain { plan, .. } => Ok(Value::Out(QueryOutput::Plan(plan.render()))),
    }
}

/// Lowers task texts into bags of words over the stored vocabulary and,
/// when the bound snapshot is a TDPM model, resolves their Algorithm-3
/// projections through the engine's LRU cache — counting
/// `query/select_cache_{hit,miss}` per query, exactly like the pre-plan
/// select paths.
fn prepare_queries(
    engine: &mut QueryEngine,
    backend: &BackendName,
    texts: &[String],
) -> Vec<PreparedQuery> {
    // Disjoint borrows: the snapshot map is read while the cache is
    // written, so destructure instead of going through `&mut self` methods.
    let QueryEngine {
        storage,
        fitted,
        cache,
        obs,
        ..
    } = engine;
    let vocab = storage.db().vocab();
    let model = fitted
        .get(backend.as_str())
        .and_then(|f| Some((f.epoch(), f.downcast_ref::<TdpmModel>()?)));
    let metrics = &obs.metrics;
    texts
        .iter()
        .map(|text| {
            let bow = BagOfWords::from_known_tokens(&tokenize_filtered(text), vocab);
            let projection = model.map(|(epoch, model)| {
                let (projection, hit) =
                    cache.get_or_insert_with(epoch, &bow, || model.project_bow(&bow));
                let name = if hit {
                    "select_cache_hit"
                } else {
                    "select_cache_miss"
                };
                metrics.counter("query", name).inc();
                projection.clone()
            });
            PreparedQuery { bow, projection }
        })
        .collect()
}

/// Ranks every prepared query against the pool through the bound snapshot,
/// with the pushed-down limit driving the fused rank-and-truncate kernels.
/// Single queries take the per-query dense path, multi-query plans the
/// batched kernels — both bit-identical to each other and to the pre-plan
/// engine.
fn score_queries(
    fitted: &FittedSelector,
    queries: &[PreparedQuery],
    pool: &[WorkerId],
    k: usize,
) -> Vec<Vec<RankedWorker>> {
    match fitted.downcast_ref::<TdpmModel>() {
        Some(model) => {
            if let [query] = queries {
                // Project never misses the projection for a TDPM snapshot;
                // the fallback keeps this total without a panic path.
                let computed;
                let projection = match &query.projection {
                    Some(p) => p,
                    None => {
                        computed = model.project_bow(&query.bow);
                        &computed
                    }
                };
                vec![model.select_top_k(projection, pool.iter().copied(), k)]
            } else {
                let projections: Vec<TaskProjection> = queries
                    .iter()
                    .map(|q| match &q.projection {
                        Some(p) => p.clone(),
                        None => model.project_bow(&q.bow),
                    })
                    .collect();
                model.select_top_k_batch(&projections, pool, k)
            }
        }
        None => {
            if let [query] = queries {
                vec![fitted.selector().select(&query.bow, pool, k)]
            } else {
                let batch: Vec<BatchQuery<'_>> = queries
                    .iter()
                    .map(|q| BatchQuery {
                        bow: &q.bow,
                        candidates: pool,
                        task: None,
                    })
                    .collect();
                fitted.select_batch(&batch, k)
            }
        }
    }
}
