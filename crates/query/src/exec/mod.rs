//! Plan execution with per-node instrumentation, deadline/cancellation
//! checkpoints, degradation and a fault-disciplined storage boundary.
//!
//! The executor walks a [`LogicalPlan`]'s nodes in order, moving values
//! between [`VarId`] slots, against the engine's storage, selector
//! registry and projection cache. Every node records its wall-clock under
//! `query/plan_node_seconds_<kind>` so a [`crowd_obs::MetricsSnapshot`]
//! shows where a statement spent its time, node by node.
//!
//! Execution is bit-identical to the pre-plan engine: `Scan` and `Bind`
//! reproduce the historical error precedence (empty candidate pool before
//! unknown backend / missing model), `Project` serves Algorithm-3
//! projections through the same LRU cache (and owns the
//! `select_cache_{hit,miss}` counters), and `Score` — with the `TopK`
//! limit pushed down by the compiler — drives exactly the fused kernels
//! the old code paths called, now through their guarded variants
//! ([`crowd_core::TdpmModel::select_top_k_guarded`] and friends) so the
//! query's [`QueryContext`] is polled at every kernel chunk boundary.
//!
//! **Robustness model.** [`execute_ctx`] checkpoints the context at every
//! node boundary and inside the dense kernels. An interruption
//! (cancellation, deadline, budget) either surfaces as a typed
//! [`QueryError`] or — for `SELECT` plans under
//! [`DegradePolicy::Partial`] — flips the walk into *degraded mode*: the
//! honestly-scored prefix is kept, the remaining expensive nodes are
//! skipped, and every affected result table is marked `degraded`.
//! Cancellation always errors. Storage operations (`Scan` reads, `Mutate`
//! writes) run under [`faults::with_retries`]: bounded-backoff retry for
//! transient failures plus the deterministic seeded fault injection the
//! chaos suite drives. Interruption checkpoints never land *inside* a
//! storage mutation, so shared state is never poisoned mid-update.

pub(crate) mod context;
pub(crate) mod faults;
pub(crate) mod storage;

pub use context::{CancelToken, CtxGuard, DegradePolicy, Interruption, QueryContext};

use crate::ast::BackendName;
use crate::engine::QueryEngine;
use crate::output::{QueryOutput, WorkerTable};
use crate::plan::{LogicalPlan, PlanNode, VarId};
use crate::QueryError;
use crowd_core::{Precision, TaskProjection, TdpmModel};
use crowd_select::{BatchQuery, FittedSelector, RankedWorker};
use crowd_store::WorkerId;
use crowd_text::{tokenize_filtered, BagOfWords};
use std::time::Duration;

/// One query after `Project`: its bag of words over the stored vocabulary,
/// plus the Algorithm-3 projection when the bound snapshot is a TDPM model.
pub(crate) struct PreparedQuery {
    bow: BagOfWords,
    projection: Option<TaskProjection>,
}

/// One query's ranking out of `Score`, with the honesty bit: `complete`
/// is `false` when the context stopped the kernel before the whole pool
/// was scored (the rows are then a scanned-prefix ranking).
struct Scored {
    ranked: Vec<RankedWorker>,
    complete: bool,
}

/// A value flowing through a plan slot.
enum Value {
    /// Candidate pool from `Scan`.
    Candidates(Vec<WorkerId>),
    /// Prepared queries from `Project`.
    Queries(Vec<PreparedQuery>),
    /// Per-query rankings from `Score` / `TopK`.
    Ranked(Vec<Scored>),
    /// Per-query result tables from `Merge`.
    Tables(Vec<WorkerTable>),
    /// Backend binding marker from `Bind` (the snapshot lives in engine
    /// state; the marker carries the name downstream nodes resolve it by).
    Bound(BackendName),
    /// A finished statement output (mutations, `TRAIN`, `SHOW`, `EXPLAIN`).
    Out(QueryOutput),
}

fn internal(what: &str) -> QueryError {
    QueryError::Execution(format!("internal plan error: {what}"))
}

fn take(slots: &mut [Option<Value>], var: VarId) -> Result<Value, QueryError> {
    slots
        .get_mut(var.0)
        .and_then(Option::take)
        .ok_or_else(|| internal("read from an empty slot"))
}

/// Maps an interruption to its typed error, counting it
/// (`query/cancelled`, `query/deadline_exceeded`, `query/budget_exhausted`)
/// so every non-success outcome is visible in a metrics snapshot.
fn interruption_error(engine: &QueryEngine, i: Interruption) -> QueryError {
    let name = match i {
        Interruption::Cancelled => "cancelled",
        Interruption::DeadlineExceeded => "deadline_exceeded",
        Interruption::BudgetExhausted => "budget_exhausted",
    };
    engine.obs.metrics.counter("query", name).inc();
    QueryError::from(i)
}

/// Decides what an interruption means for this plan: degrade (return
/// `Ok`, counting `query/degraded`) when the query opted into partial
/// results, the plan is a `SELECT` and the cause is not cancellation;
/// otherwise raise the typed error.
fn absorb_or_raise(
    engine: &QueryEngine,
    ctx: &QueryContext,
    plan_selects: bool,
    i: Interruption,
) -> Result<(), QueryError> {
    if plan_selects && i != Interruption::Cancelled && ctx.policy() == DegradePolicy::Partial {
        engine.obs.metrics.counter("query", "degraded").inc();
        Ok(())
    } else {
        Err(interruption_error(engine, i))
    }
}

/// Executes a plan under a [`QueryContext`], returning one [`QueryOutput`]
/// per covered statement (fused `SELECT` plans return one `Workers` output
/// per query, in input order). `queue_wait` is the admission-queue time to
/// stamp onto result tables, when the query went through admission
/// control.
pub(crate) fn execute_ctx(
    engine: &mut QueryEngine,
    plan: &LogicalPlan,
    ctx: &QueryContext,
    queue_wait: Option<Duration>,
) -> Result<Vec<QueryOutput>, QueryError> {
    let started = std::time::Instant::now();
    let plan_selects = plan
        .nodes
        .iter()
        .any(|n| matches!(n, PlanNode::Score { .. }));
    let mut degraded = false;
    let mut slots: Vec<Option<Value>> = std::iter::repeat_with(|| None).take(plan.slots).collect();
    let mut last: Option<VarId> = None;
    for node in &plan.nodes {
        // Node-boundary checkpoint: an interruption either errors out here
        // or flips the rest of the walk into degraded mode.
        if !degraded {
            if let Err(i) = ctx.check() {
                absorb_or_raise(engine, ctx, plan_selects, i)?;
                degraded = true;
            }
        }
        let node_started = std::time::Instant::now();
        let value = if degraded {
            run_node_degraded(engine, node, &mut slots)?
        } else {
            run_node(engine, node, &mut slots, ctx)?
        };
        // The kernels may have been stopped mid-Score by the context's
        // guard: the rankings come back honest (scanned prefix, marked
        // incomplete) and the policy decision is made here.
        if !degraded {
            if let Value::Ranked(scored) = &value {
                if scored.iter().any(|s| !s.complete) {
                    absorb_or_raise(engine, ctx, plan_selects, ctx.interruption())?;
                    degraded = true;
                }
            }
        }
        engine
            .obs
            .metrics
            .histogram("query", &format!("plan_node_seconds_{}", node.kind()))
            .observe_duration(node_started.elapsed());
        let out = node.out();
        *slots
            .get_mut(out.0)
            .ok_or_else(|| internal("write to an out-of-range slot"))? = Some(value);
        last = Some(out);
    }
    let Some(last) = last else {
        return Ok(Vec::new());
    };
    match take(&mut slots, last)? {
        Value::Tables(mut tables) => {
            // Only contextual executions stamp timings: unbounded runs stay
            // bit-identical (including `PartialEq`) to the historical
            // output.
            if queue_wait.is_some() || !ctx.is_unbounded() {
                let elapsed = started.elapsed();
                for table in &mut tables {
                    table.queue_wait = queue_wait;
                    table.elapsed = Some(elapsed);
                }
            }
            Ok(tables.into_iter().map(QueryOutput::Workers).collect())
        }
        Value::Out(output) => Ok(vec![output]),
        _ => Err(internal("plan ended on an intermediate value")),
    }
}

fn run_node(
    engine: &mut QueryEngine,
    node: &PlanNode,
    slots: &mut [Option<Value>],
    ctx: &QueryContext,
) -> Result<Value, QueryError> {
    match node {
        PlanNode::Scan { min_group, .. } => {
            // The candidate read runs under the storage failure discipline:
            // injected faults retry with bounded backoff, real errors (all
            // permanent today) surface immediately.
            let pool = faults::with_retries(
                ctx,
                &engine.retry,
                engine.faults.as_ref(),
                &engine.obs,
                |_: &QueryError| false,
                || engine.candidate_pool(*min_group),
            )?;
            Ok(Value::Candidates(pool))
        }
        PlanNode::Bind { backend, .. } => {
            engine.ensure_fitted(backend)?;
            Ok(Value::Bound(backend.clone()))
        }
        PlanNode::Project { texts, binding, .. } => {
            let Value::Bound(backend) = take(slots, *binding)? else {
                return Err(internal("Project without a binding"));
            };
            Ok(Value::Queries(prepare_queries(engine, &backend, texts)))
        }
        PlanNode::Score {
            backend,
            k,
            precision,
            queries,
            candidates,
            ..
        } => {
            let Value::Queries(queries) = take(slots, *queries)? else {
                return Err(internal("Score without prepared queries"));
            };
            let Value::Candidates(pool) = take(slots, *candidates)? else {
                return Err(internal("Score without a candidate pool"));
            };
            let fitted = engine
                .fitted
                .get(backend.as_str())
                .ok_or_else(|| internal("Score without a bound snapshot"))?;
            Ok(Value::Ranked(score_queries(
                fitted, &queries, &pool, *k, *precision, ctx,
            )))
        }
        PlanNode::TopK { k, input, .. } => {
            let Value::Ranked(mut ranked) = take(slots, *input)? else {
                return Err(internal("TopK without rankings"));
            };
            // The compiler pushed `k` down into Score, so this truncation
            // is a no-op — kept as the explicit logical boundary (and a
            // guard should a future compiler stop pushing down).
            for ranking in &mut ranked {
                ranking.ranked.truncate(*k);
            }
            Ok(Value::Ranked(ranked))
        }
        PlanNode::Merge { input, .. } => {
            let Value::Ranked(ranked) = take(slots, *input)? else {
                return Err(internal("Merge without rankings"));
            };
            Ok(Value::Tables(merge_tables(engine, ranked)))
        }
        PlanNode::Mutate { op, .. } => {
            let output = {
                let QueryEngine {
                    storage,
                    retry,
                    faults,
                    obs,
                    ..
                } = engine;
                faults::with_retries(
                    ctx,
                    retry,
                    faults.as_ref(),
                    obs,
                    crowd_store::StoreError::is_transient,
                    || storage.try_apply(op),
                )?
            };
            engine.invalidate(op.invalidates());
            Ok(Value::Out(output))
        }
        PlanNode::Fit {
            backend,
            categories,
            ..
        } => engine.train(backend, *categories).map(Value::Out),
        PlanNode::Inspect { target, .. } => engine.show(target).map(Value::Out),
        PlanNode::Explain { plan, .. } => Ok(Value::Out(QueryOutput::Plan(plan.render()))),
    }
}

/// Degraded-mode node execution, after an interruption was absorbed under
/// [`DegradePolicy::Partial`]: the remaining expensive work is skipped and
/// placeholder values flow through so the plan still terminates with one
/// (possibly empty) table per query. Only `SELECT` node kinds are legal
/// here — a plan cannot degrade into a mutation.
fn run_node_degraded(
    engine: &mut QueryEngine,
    node: &PlanNode,
    slots: &mut [Option<Value>],
) -> Result<Value, QueryError> {
    match node {
        PlanNode::Scan { .. } => Ok(Value::Candidates(Vec::new())),
        PlanNode::Bind { backend, .. } => Ok(Value::Bound(backend.clone())),
        PlanNode::Project { texts, binding, .. } => {
            take(slots, *binding)?;
            Ok(Value::Queries(
                texts
                    .iter()
                    .map(|_| PreparedQuery {
                        bow: BagOfWords::new(),
                        projection: None,
                    })
                    .collect(),
            ))
        }
        PlanNode::Score {
            queries,
            candidates,
            ..
        } => {
            let Value::Queries(queries) = take(slots, *queries)? else {
                return Err(internal("Score without prepared queries"));
            };
            take(slots, *candidates)?;
            Ok(Value::Ranked(
                queries
                    .iter()
                    .map(|_| Scored {
                        ranked: Vec::new(),
                        complete: false,
                    })
                    .collect(),
            ))
        }
        PlanNode::TopK { k, input, .. } => {
            let Value::Ranked(mut ranked) = take(slots, *input)? else {
                return Err(internal("TopK without rankings"));
            };
            for ranking in &mut ranked {
                ranking.ranked.truncate(*k);
            }
            Ok(Value::Ranked(ranked))
        }
        PlanNode::Merge { input, .. } => {
            let Value::Ranked(ranked) = take(slots, *input)? else {
                return Err(internal("Merge without rankings"));
            };
            Ok(Value::Tables(merge_tables(engine, ranked)))
        }
        _ => Err(internal("degraded execution reached a non-select node")),
    }
}

/// Decorates each ranking into its result table, carrying the per-query
/// honesty bit: a table built from an incomplete ranking is `degraded`.
fn merge_tables(engine: &QueryEngine, ranked: Vec<Scored>) -> Vec<WorkerTable> {
    ranked
        .into_iter()
        .map(|s| WorkerTable {
            rows: engine.to_rows(s.ranked),
            degraded: !s.complete,
            queue_wait: None,
            elapsed: None,
        })
        .collect()
}

/// Lowers task texts into bags of words over the stored vocabulary and,
/// when the bound snapshot is a TDPM model, resolves their Algorithm-3
/// projections through the engine's LRU cache — counting
/// `query/select_cache_{hit,miss}` per query, exactly like the pre-plan
/// select paths.
fn prepare_queries(
    engine: &mut QueryEngine,
    backend: &BackendName,
    texts: &[String],
) -> Vec<PreparedQuery> {
    // Disjoint borrows: the snapshot map is read while the cache is
    // written, so destructure instead of going through `&mut self` methods.
    let QueryEngine {
        storage,
        fitted,
        cache,
        obs,
        ..
    } = engine;
    let vocab = storage.db().vocab();
    let model = fitted
        .get(backend.as_str())
        .and_then(|f| Some((f.epoch(), f.downcast_ref::<TdpmModel>()?)));
    let metrics = &obs.metrics;
    texts
        .iter()
        .map(|text| {
            let bow = BagOfWords::from_known_tokens(&tokenize_filtered(text), vocab);
            let projection = model.map(|(epoch, model)| {
                let (projection, hit) =
                    cache.get_or_insert_with(epoch, &bow, || model.project_bow(&bow));
                let name = if hit {
                    "select_cache_hit"
                } else {
                    "select_cache_miss"
                };
                metrics.counter("query", name).inc();
                projection.clone()
            });
            PreparedQuery { bow, projection }
        })
        .collect()
}

/// Ranks every prepared query against the pool through the bound snapshot,
/// with the pushed-down limit driving the fused rank-and-truncate kernels
/// and the context's guard polled at every kernel chunk boundary.
///
/// Single queries take the per-query dense path, multi-query plans the
/// batched kernels — both bit-identical to each other and to the
/// pre-context engine whenever the context never fires (the guarded
/// kernels *are* the unguarded ones then; baselines without guarded
/// batch kernels fall back to the per-query path, which PR 4's property
/// suite pins bit-identical to `select_batch`).
///
/// `precision` routes TDPM scoring through the f32 skill mirror when the
/// engine opted in; baselines have no reduced-precision path and ignore it
/// (they always serve f64, as `Precision`'s contract documents).
fn score_queries(
    fitted: &FittedSelector,
    queries: &[PreparedQuery],
    pool: &[WorkerId],
    k: usize,
    precision: Precision,
    ctx: &QueryContext,
) -> Vec<Scored> {
    match fitted.downcast_ref::<TdpmModel>() {
        Some(model) => {
            let guard = ctx.guard();
            if let [query] = queries {
                // Project never misses the projection for a TDPM snapshot;
                // the fallback keeps this total without a panic path.
                let computed;
                let projection = match &query.projection {
                    Some(p) => p,
                    None => {
                        computed = model.project_bow(&query.bow);
                        &computed
                    }
                };
                let pr = match precision {
                    Precision::F64 => {
                        model.select_top_k_guarded(projection, pool.iter().copied(), k, &guard)
                    }
                    Precision::F32 => {
                        model.select_top_k_f32_guarded(projection, pool.iter().copied(), k, &guard)
                    }
                };
                vec![Scored {
                    ranked: pr.ranked,
                    complete: pr.complete,
                }]
            } else {
                let projections: Vec<TaskProjection> = queries
                    .iter()
                    .map(|q| match &q.projection {
                        Some(p) => p.clone(),
                        None => model.project_bow(&q.bow),
                    })
                    .collect();
                let partials = match precision {
                    Precision::F64 => {
                        model.select_top_k_batch_guarded(&projections, pool, k, &guard)
                    }
                    Precision::F32 => {
                        model.select_top_k_f32_batch_guarded(&projections, pool, k, &guard)
                    }
                };
                partials
                    .into_iter()
                    .map(|pr| Scored {
                        ranked: pr.ranked,
                        complete: pr.complete,
                    })
                    .collect()
            }
        }
        None => {
            if let [query] = queries {
                match ctx.consume(pool.len() as u64) {
                    Ok(()) => vec![Scored {
                        ranked: fitted.selector().select(&query.bow, pool, k),
                        complete: true,
                    }],
                    Err(_) => vec![Scored {
                        ranked: Vec::new(),
                        complete: false,
                    }],
                }
            } else if ctx.is_unbounded() {
                let batch: Vec<BatchQuery<'_>> = queries
                    .iter()
                    .map(|q| BatchQuery {
                        bow: &q.bow,
                        candidates: pool,
                        task: None,
                    })
                    .collect();
                fitted
                    .select_batch(&batch, k)
                    .into_iter()
                    .map(|ranked| Scored {
                        ranked,
                        complete: true,
                    })
                    .collect()
            } else {
                // Constrained baseline sweep: the per-query loop checkpoints
                // between queries (one pool scan is the natural work unit for
                // a baseline selector) and is bit-identical to the batched
                // path by the PR 4 batching property.
                let mut out = Vec::with_capacity(queries.len());
                let mut stopped = false;
                for query in queries {
                    if stopped || ctx.consume(pool.len() as u64).is_err() {
                        stopped = true;
                        out.push(Scored {
                            ranked: Vec::new(),
                            complete: false,
                        });
                    } else {
                        out.push(Scored {
                            ranked: fitted.selector().select(&query.bow, pool, k),
                            complete: true,
                        });
                    }
                }
                out
            }
        }
    }
}
