//! Engine storage and the single mutation-dispatch path.
//!
//! The engine stores its database either plainly in memory or behind the
//! write-ahead log. Instead of one hand-written forwarding method per
//! mutation per storage flavour, every write funnels through
//! [`MutationOp::apply_to`] over the [`MutationSink`] trait: a new mutation
//! statement needs one `MutationOp` arm (plus a sink method if it calls a
//! new store entry point), not a forwarding pair.

use crate::output::QueryOutput;
use crate::plan::MutationOp;
use crate::QueryError;
use crowd_store::{CrowdDb, LoggedDb, TaskId, WorkerId};
use std::path::Path;

/// Storage behind the engine: plain in-memory, or write-ahead-logged.
#[derive(Debug)]
pub(crate) enum Storage {
    /// Plain in-memory database.
    Plain(CrowdDb),
    /// Database behind a write-ahead log.
    Logged(LoggedDb),
}

impl Storage {
    /// Opens write-ahead-logged storage, replaying any existing log.
    pub(crate) fn open_logged(path: impl AsRef<Path>) -> Result<Self, QueryError> {
        Ok(Storage::Logged(LoggedDb::open(path)?))
    }

    /// The underlying database.
    pub(crate) fn db(&self) -> &CrowdDb {
        match self {
            Storage::Plain(db) => db,
            Storage::Logged(db) => db.db(),
        }
    }

    /// Wires WAL observability, when logging is on.
    pub(crate) fn set_obs(&mut self, obs: &crowd_obs::Obs) {
        if let Storage::Logged(logged) = self {
            logged.set_obs(obs);
        }
    }

    /// Applies one mutation, keeping the typed [`crowd_store::StoreError`]
    /// so the executor's retry policy can consult
    /// `StoreError::is_transient` before converting to a query error.
    pub(crate) fn try_apply(&mut self, op: &MutationOp) -> crowd_store::Result<QueryOutput> {
        match self {
            Storage::Plain(db) => op.apply_to(db),
            Storage::Logged(db) => op.apply_to(db),
        }
    }
}

/// The store entry points a [`MutationOp`] may invoke, implemented by both
/// storage flavours so the op itself is written exactly once.
pub(crate) trait MutationSink {
    /// Inserts a worker.
    fn insert_worker(&mut self, handle: String) -> crowd_store::Result<WorkerId>;
    /// Inserts a task.
    fn insert_task(&mut self, text: String) -> crowd_store::Result<TaskId>;
    /// Assigns a worker to a task.
    fn assign(&mut self, worker: WorkerId, task: TaskId) -> crowd_store::Result<()>;
    /// Records a feedback score.
    fn feedback(&mut self, worker: WorkerId, task: TaskId, score: f64) -> crowd_store::Result<()>;
    /// Stores an answer text.
    fn answer(&mut self, worker: WorkerId, task: TaskId, text: &str) -> crowd_store::Result<()>;
}

impl MutationSink for CrowdDb {
    fn insert_worker(&mut self, handle: String) -> crowd_store::Result<WorkerId> {
        Ok(CrowdDb::add_worker(self, handle))
    }
    fn insert_task(&mut self, text: String) -> crowd_store::Result<TaskId> {
        Ok(CrowdDb::add_task(self, text))
    }
    fn assign(&mut self, worker: WorkerId, task: TaskId) -> crowd_store::Result<()> {
        CrowdDb::assign(self, worker, task)
    }
    fn feedback(&mut self, worker: WorkerId, task: TaskId, score: f64) -> crowd_store::Result<()> {
        CrowdDb::record_feedback(self, worker, task, score)
    }
    fn answer(&mut self, worker: WorkerId, task: TaskId, text: &str) -> crowd_store::Result<()> {
        CrowdDb::record_answer(self, worker, task, text)
    }
}

impl MutationSink for LoggedDb {
    fn insert_worker(&mut self, handle: String) -> crowd_store::Result<WorkerId> {
        LoggedDb::add_worker(self, handle)
    }
    fn insert_task(&mut self, text: String) -> crowd_store::Result<TaskId> {
        LoggedDb::add_task(self, text)
    }
    fn assign(&mut self, worker: WorkerId, task: TaskId) -> crowd_store::Result<()> {
        LoggedDb::assign(self, worker, task)
    }
    fn feedback(&mut self, worker: WorkerId, task: TaskId, score: f64) -> crowd_store::Result<()> {
        LoggedDb::record_feedback(self, worker, task, score)
    }
    fn answer(&mut self, worker: WorkerId, task: TaskId, text: &str) -> crowd_store::Result<()> {
        LoggedDb::record_answer(self, worker, task, text)
    }
}

impl MutationOp {
    /// Applies the mutation to any [`MutationSink`] and builds the
    /// statement's acknowledgement — the one place each mutation's storage
    /// call and output live.
    pub(crate) fn apply_to<S: MutationSink>(&self, db: &mut S) -> crowd_store::Result<QueryOutput> {
        match self {
            MutationOp::InsertWorker { handle } => Ok(QueryOutput::WorkerInserted(
                db.insert_worker(handle.clone())?,
            )),
            MutationOp::InsertTask { text } => {
                Ok(QueryOutput::TaskInserted(db.insert_task(text.clone())?))
            }
            MutationOp::Assign { worker, task } => {
                db.assign(*worker, *task)?;
                Ok(QueryOutput::Ack(format!("assigned {worker} to {task}")))
            }
            MutationOp::Feedback {
                worker,
                task,
                score,
            } => {
                db.feedback(*worker, *task, *score)?;
                Ok(QueryOutput::Ack(format!(
                    "recorded score {score} for {worker} on {task}"
                )))
            }
            MutationOp::Answer { worker, task, text } => {
                db.answer(*worker, *task, text)?;
                Ok(QueryOutput::Ack(format!(
                    "stored answer from {worker} on {task}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_and_logged_storage_agree_on_acknowledgements() {
        let mut plain = Storage::Plain(CrowdDb::new());
        let w = plain
            .try_apply(&MutationOp::InsertWorker {
                handle: "ada".into(),
            })
            .unwrap();
        assert_eq!(w, QueryOutput::WorkerInserted(WorkerId(0)));
        let t = plain
            .try_apply(&MutationOp::InsertTask {
                text: "btree".into(),
            })
            .unwrap();
        assert_eq!(t, QueryOutput::TaskInserted(TaskId(0)));
        let ack = plain
            .try_apply(&MutationOp::Assign {
                worker: WorkerId(0),
                task: TaskId(0),
            })
            .unwrap();
        assert_eq!(ack, QueryOutput::Ack("assigned w0 to t0".into()));
        let ack = plain
            .try_apply(&MutationOp::Feedback {
                worker: WorkerId(0),
                task: TaskId(0),
                score: 4.0,
            })
            .unwrap();
        assert_eq!(
            ack,
            QueryOutput::Ack("recorded score 4 for w0 on t0".into())
        );
        let ack = plain
            .try_apply(&MutationOp::Answer {
                worker: WorkerId(0),
                task: TaskId(0),
                text: "split".into(),
            })
            .unwrap();
        assert_eq!(ack, QueryOutput::Ack("stored answer from w0 on t0".into()));
        assert_eq!(plain.db().num_workers(), 1);
        assert_eq!(plain.db().num_resolved(), 1);
    }

    #[test]
    fn storage_errors_stay_typed_for_the_retry_policy() {
        let mut s = Storage::Plain(CrowdDb::new());
        let err = s
            .try_apply(&MutationOp::Assign {
                worker: WorkerId(9),
                task: TaskId(9),
            })
            .unwrap_err();
        assert!(!err.is_transient(), "bad ids are permanent: {err}");
        assert!(matches!(QueryError::from(err), QueryError::Execution(_)));
    }
}
