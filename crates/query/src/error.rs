//! Query-layer errors.

use std::fmt;

/// Errors raised while lexing, parsing or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The input could not be tokenized.
    Lex {
        /// Byte position of the offending character.
        position: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// The token stream does not form a valid statement.
    Parse {
        /// Byte offset of the offending token (the input's byte length when
        /// the statement ended too early) — slice the input at this offset
        /// to point at the problem.
        position: usize,
        /// What the parser expected.
        expected: String,
        /// What it found instead.
        found: String,
    },
    /// Execution failed (store error, missing model, unknown ids…).
    Execution(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            QueryError::Parse {
                position,
                expected,
                found,
            } => {
                write!(
                    f,
                    "parse error at byte {position}: expected {expected}, found {found}"
                )
            }
            QueryError::Execution(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<crowd_store::StoreError> for QueryError {
    fn from(e: crowd_store::StoreError) -> Self {
        QueryError::Execution(e.to_string())
    }
}

impl From<crowd_core::CoreError> for QueryError {
    fn from(e: crowd_core::CoreError) -> Self {
        QueryError::Execution(e.to_string())
    }
}

impl From<crowd_select::SelectError> for QueryError {
    fn from(e: crowd_select::SelectError) -> Self {
        QueryError::Execution(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = QueryError::Lex {
            position: 3,
            message: "bad char".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        let e = QueryError::Parse {
            position: 7,
            expected: "a number".into(),
            found: "'x'".into(),
        };
        assert!(e.to_string().contains("expected a number"));
        assert!(e.to_string().contains("byte 7"));
        assert!(QueryError::Execution("boom".into())
            .to_string()
            .contains("boom"));
    }
}
