//! Query-layer errors.

use crate::admission::AdmissionError;
use std::fmt;

/// Errors raised while lexing, parsing or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The input could not be tokenized.
    Lex {
        /// Byte position of the offending character.
        position: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// The token stream does not form a valid statement.
    Parse {
        /// Byte offset of the offending token (the input's byte length when
        /// the statement ended too early) — slice the input at this offset
        /// to point at the problem.
        position: usize,
        /// What the parser expected.
        expected: String,
        /// What it found instead.
        found: String,
    },
    /// Execution failed (store error, missing model, unknown ids…).
    Execution(String),
    /// The query's wall-clock deadline passed before execution finished
    /// (and its [`crate::DegradePolicy`] did not permit a partial result).
    DeadlineExceeded,
    /// The query's [`crate::CancelToken`] fired. Cancellation is always an
    /// error — the caller asked for the query to stop, not for its prefix.
    Cancelled,
    /// The query's row/work budget ran out before execution finished (and
    /// its [`crate::DegradePolicy`] did not permit a partial result).
    BudgetExhausted,
    /// The query never started: the admission controller shed it or its
    /// queue wait timed out.
    Admission(AdmissionError),
    /// A transient storage fault persisted through every bounded-backoff
    /// retry the policy allows.
    RetriesExhausted {
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// The final attempt's error text.
        last: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            QueryError::Parse {
                position,
                expected,
                found,
            } => {
                write!(
                    f,
                    "parse error at byte {position}: expected {expected}, found {found}"
                )
            }
            QueryError::Execution(msg) => write!(f, "execution error: {msg}"),
            QueryError::DeadlineExceeded => f.write_str("deadline exceeded"),
            QueryError::Cancelled => f.write_str("query cancelled"),
            QueryError::BudgetExhausted => f.write_str("work budget exhausted"),
            QueryError::Admission(e) => write!(f, "admission refused: {e}"),
            QueryError::RetriesExhausted { attempts, last } => {
                write!(f, "storage still failing after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<AdmissionError> for QueryError {
    fn from(e: AdmissionError) -> Self {
        QueryError::Admission(e)
    }
}

impl From<crate::exec::Interruption> for QueryError {
    fn from(i: crate::exec::Interruption) -> Self {
        match i {
            crate::exec::Interruption::Cancelled => QueryError::Cancelled,
            crate::exec::Interruption::DeadlineExceeded => QueryError::DeadlineExceeded,
            crate::exec::Interruption::BudgetExhausted => QueryError::BudgetExhausted,
        }
    }
}

impl From<crowd_store::StoreError> for QueryError {
    fn from(e: crowd_store::StoreError) -> Self {
        QueryError::Execution(e.to_string())
    }
}

impl From<crowd_core::CoreError> for QueryError {
    fn from(e: crowd_core::CoreError) -> Self {
        QueryError::Execution(e.to_string())
    }
}

impl From<crowd_select::SelectError> for QueryError {
    fn from(e: crowd_select::SelectError) -> Self {
        QueryError::Execution(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = QueryError::Lex {
            position: 3,
            message: "bad char".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        let e = QueryError::Parse {
            position: 7,
            expected: "a number".into(),
            found: "'x'".into(),
        };
        assert!(e.to_string().contains("expected a number"));
        assert!(e.to_string().contains("byte 7"));
        assert!(QueryError::Execution("boom".into())
            .to_string()
            .contains("boom"));
    }

    #[test]
    fn robustness_variants_render() {
        assert_eq!(
            QueryError::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
        assert_eq!(QueryError::Cancelled.to_string(), "query cancelled");
        assert_eq!(
            QueryError::BudgetExhausted.to_string(),
            "work budget exhausted"
        );
        let shed = QueryError::Admission(AdmissionError::Shed {
            active: 4,
            queued: 16,
        });
        assert!(shed.to_string().starts_with("admission refused:"));
        let retries = QueryError::RetriesExhausted {
            attempts: 4,
            last: "injected transient fault".into(),
        };
        assert!(retries.to_string().contains("after 4 attempts"));
        assert!(retries.to_string().contains("injected transient fault"));
    }

    #[test]
    fn interruptions_map_to_typed_errors() {
        use crate::exec::Interruption;
        assert_eq!(
            QueryError::from(Interruption::Cancelled),
            QueryError::Cancelled
        );
        assert_eq!(
            QueryError::from(Interruption::DeadlineExceeded),
            QueryError::DeadlineExceeded
        );
        assert_eq!(
            QueryError::from(Interruption::BudgetExhausted),
            QueryError::BudgetExhausted
        );
    }
}
