//! Abstract syntax of the crowd-query language.

use crowd_store::{TaskId, WorkerId};

/// Which ranking algorithm a `SELECT WORKERS` query uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// The task-driven probabilistic model (default; requires `TRAIN MODEL`).
    #[default]
    Tdpm,
    /// Cosine similarity against worker history.
    Vsm,
    /// PLSA-based Dual Role Model.
    Drm,
    /// LDA-based Topic-Sensitive Probabilistic Model.
    Tspm,
}

impl Algorithm {
    /// Parses an algorithm name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "tdpm" => Some(Algorithm::Tdpm),
            "vsm" => Some(Algorithm::Vsm),
            "drm" => Some(Algorithm::Drm),
            "tspm" => Some(Algorithm::Tspm),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Tdpm => "TDPM",
            Algorithm::Vsm => "VSM",
            Algorithm::Drm => "DRM",
            Algorithm::Tspm => "TSPM",
        }
    }
}

/// Target of a `SHOW` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ShowTarget {
    /// `SHOW STATS` — database totals.
    Stats,
    /// `SHOW WORKER n` — roster entry, participation, learned skills.
    Worker(WorkerId),
    /// `SHOW TASK n` — task text and its scored answers.
    Task(TaskId),
    /// `SHOW GROUPS a, b, c` — group sizes and coverage per threshold.
    Groups(Vec<usize>),
    /// `SHOW SIMILAR 'text' LIMIT n` — most similar stored tasks by cosine
    /// over the inverted index.
    Similar {
        /// Query text.
        text: String,
        /// Maximum results.
        limit: usize,
    },
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `INSERT WORKER 'handle'`
    InsertWorker {
        /// Display handle.
        handle: String,
    },
    /// `INSERT TASK 'text'`
    InsertTask {
        /// Task text.
        text: String,
    },
    /// `ASSIGN WORKER w TO TASK t`
    Assign {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
    },
    /// `FEEDBACK WORKER w ON TASK t SCORE s`
    Feedback {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
        /// The score `s_ij`.
        score: f64,
    },
    /// `ANSWER WORKER w ON TASK t TEXT 'answer'`
    Answer {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
        /// Answer text.
        text: String,
    },
    /// `TRAIN MODEL [WITH k CATEGORIES]`
    TrainModel {
        /// Latent category count (default 10).
        categories: usize,
    },
    /// `SELECT WORKERS FOR TASK 'text' [LIMIT k] [USING algo] [WHERE GROUP >= n]`
    SelectWorkers {
        /// The query task text.
        text: String,
        /// Top-k (default 1).
        limit: usize,
        /// Ranking algorithm.
        algorithm: Algorithm,
        /// Restrict candidates to workers with ≥ n resolved tasks.
        min_group: Option<usize>,
    },
    /// `SHOW …`
    Show(ShowTarget),
}

impl std::fmt::Display for Statement {
    /// Renders the statement back into parseable query text (quotes in
    /// string literals are escaped as `''`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let quote = |s: &str| format!("'{}'", s.replace('\'', "''"));
        match self {
            Statement::InsertWorker { handle } => write!(f, "INSERT WORKER {}", quote(handle)),
            Statement::InsertTask { text } => write!(f, "INSERT TASK {}", quote(text)),
            Statement::Assign { worker, task } => {
                write!(f, "ASSIGN WORKER {} TO TASK {}", worker.0, task.0)
            }
            Statement::Feedback {
                worker,
                task,
                score,
            } => write!(
                f,
                "FEEDBACK WORKER {} ON TASK {} SCORE {}",
                worker.0, task.0, score
            ),
            Statement::Answer { worker, task, text } => write!(
                f,
                "ANSWER WORKER {} ON TASK {} TEXT {}",
                worker.0,
                task.0,
                quote(text)
            ),
            Statement::TrainModel { categories } => {
                write!(f, "TRAIN MODEL WITH {categories} CATEGORIES")
            }
            Statement::SelectWorkers {
                text,
                limit,
                algorithm,
                min_group,
            } => {
                write!(
                    f,
                    "SELECT WORKERS FOR TASK {} LIMIT {} USING {}",
                    quote(text),
                    limit,
                    algorithm.name().to_lowercase()
                )?;
                if let Some(n) = min_group {
                    write!(f, " WHERE GROUP >= {n}")?;
                }
                Ok(())
            }
            Statement::Show(target) => match target {
                ShowTarget::Stats => write!(f, "SHOW STATS"),
                ShowTarget::Worker(w) => write!(f, "SHOW WORKER {}", w.0),
                ShowTarget::Task(t) => write!(f, "SHOW TASK {}", t.0),
                ShowTarget::Groups(ns) => {
                    write!(f, "SHOW GROUPS ")?;
                    for (i, n) in ns.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{n}")?;
                    }
                    Ok(())
                }
                ShowTarget::Similar { text, limit } => {
                    write!(f, "SHOW SIMILAR {} LIMIT {}", quote(text), limit)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_roundtrip() {
        for a in [Algorithm::Tdpm, Algorithm::Vsm, Algorithm::Drm, Algorithm::Tspm] {
            assert_eq!(Algorithm::from_name(a.name()), Some(a));
            assert_eq!(Algorithm::from_name(&a.name().to_lowercase()), Some(a));
        }
        assert_eq!(Algorithm::from_name("nope"), None);
    }

    #[test]
    fn default_algorithm_is_tdpm() {
        assert_eq!(Algorithm::default(), Algorithm::Tdpm);
    }
}
