//! Abstract syntax of the crowd-query language.

use crowd_store::{TaskId, WorkerId};

/// Canonical (lowercase) name of the selection backend a `SELECT WORKERS`
/// query uses.
///
/// The query language no longer hard-codes an algorithm enum: any registered
/// `crowd_select::SelectorBackend` can serve a `USING <backend>` clause, so
/// the AST carries the name verbatim and the engine resolves it against its
/// registry at execution time (unknown names fail there, with the list of
/// known backends).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BackendName(String);

impl BackendName {
    /// Wraps a backend name, canonicalizing to lowercase.
    pub fn new(name: impl AsRef<str>) -> Self {
        BackendName(name.as_ref().to_ascii_lowercase())
    }

    /// The canonical name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for BackendName {
    /// The task-driven probabilistic model (requires `TRAIN MODEL`).
    fn default() -> Self {
        BackendName("tdpm".into())
    }
}

impl std::fmt::Display for BackendName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for BackendName {
    fn from(name: &str) -> Self {
        BackendName::new(name)
    }
}

/// Target of a `SHOW` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ShowTarget {
    /// `SHOW STATS` — database totals.
    Stats,
    /// `SHOW WORKER n` — roster entry, participation, learned skills.
    Worker(WorkerId),
    /// `SHOW TASK n` — task text and its scored answers.
    Task(TaskId),
    /// `SHOW GROUPS a, b, c` — group sizes and coverage per threshold.
    Groups(Vec<usize>),
    /// `SHOW SIMILAR 'text' LIMIT n` — most similar stored tasks by cosine
    /// over the inverted index.
    Similar {
        /// Query text.
        text: String,
        /// Maximum results.
        limit: usize,
    },
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `INSERT WORKER 'handle'`
    InsertWorker {
        /// Display handle.
        handle: String,
    },
    /// `INSERT TASK 'text'`
    InsertTask {
        /// Task text.
        text: String,
    },
    /// `ASSIGN WORKER w TO TASK t`
    Assign {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
    },
    /// `FEEDBACK WORKER w ON TASK t SCORE s`
    Feedback {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
        /// The score `s_ij`.
        score: f64,
    },
    /// `ANSWER WORKER w ON TASK t TEXT 'answer'`
    Answer {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
        /// Answer text.
        text: String,
    },
    /// `TRAIN MODEL [WITH k CATEGORIES]`
    TrainModel {
        /// Latent category count (default 10).
        categories: usize,
    },
    /// `SELECT WORKERS FOR TASK 'text' [LIMIT k] [USING backend] [WHERE GROUP >= n]`
    SelectWorkers {
        /// The query task text.
        text: String,
        /// Top-k (default 1).
        limit: usize,
        /// Selection backend, resolved against the engine's registry.
        backend: BackendName,
        /// Restrict candidates to workers with ≥ n resolved tasks.
        min_group: Option<usize>,
    },
    /// `SHOW …`
    Show(ShowTarget),
    /// `EXPLAIN <statement>` — compile the inner statement and render its
    /// logical plan instead of executing it.
    Explain(Box<Statement>),
}

impl std::fmt::Display for Statement {
    /// Renders the statement back into parseable query text (quotes in
    /// string literals are escaped as `''`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let quote = |s: &str| format!("'{}'", s.replace('\'', "''"));
        match self {
            Statement::InsertWorker { handle } => write!(f, "INSERT WORKER {}", quote(handle)),
            Statement::InsertTask { text } => write!(f, "INSERT TASK {}", quote(text)),
            Statement::Assign { worker, task } => {
                write!(f, "ASSIGN WORKER {} TO TASK {}", worker.0, task.0)
            }
            Statement::Feedback {
                worker,
                task,
                score,
            } => write!(
                f,
                "FEEDBACK WORKER {} ON TASK {} SCORE {}",
                worker.0, task.0, score
            ),
            Statement::Answer { worker, task, text } => write!(
                f,
                "ANSWER WORKER {} ON TASK {} TEXT {}",
                worker.0,
                task.0,
                quote(text)
            ),
            Statement::TrainModel { categories } => {
                write!(f, "TRAIN MODEL WITH {categories} CATEGORIES")
            }
            Statement::SelectWorkers {
                text,
                limit,
                backend,
                min_group,
            } => {
                write!(
                    f,
                    "SELECT WORKERS FOR TASK {} LIMIT {} USING {}",
                    quote(text),
                    limit,
                    backend
                )?;
                if let Some(n) = min_group {
                    write!(f, " WHERE GROUP >= {n}")?;
                }
                Ok(())
            }
            Statement::Show(target) => match target {
                ShowTarget::Stats => write!(f, "SHOW STATS"),
                ShowTarget::Worker(w) => write!(f, "SHOW WORKER {}", w.0),
                ShowTarget::Task(t) => write!(f, "SHOW TASK {}", t.0),
                ShowTarget::Groups(ns) => {
                    write!(f, "SHOW GROUPS ")?;
                    for (i, n) in ns.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{n}")?;
                    }
                    Ok(())
                }
                ShowTarget::Similar { text, limit } => {
                    write!(f, "SHOW SIMILAR {} LIMIT {}", quote(text), limit)
                }
            },
            Statement::Explain(inner) => write!(f, "EXPLAIN {inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_canonicalize_to_lowercase() {
        for name in ["tdpm", "vsm", "drm", "tspm"] {
            assert_eq!(BackendName::new(name.to_uppercase()).as_str(), name);
            assert_eq!(BackendName::from(name), BackendName::new(name));
        }
        assert_eq!(
            BackendName::new("MyCustomBackend").as_str(),
            "mycustombackend"
        );
    }

    #[test]
    fn default_backend_is_tdpm() {
        assert_eq!(BackendName::default().as_str(), "tdpm");
    }
}
