//! Admission control: bounded concurrency with a bounded, timed wait queue.
//!
//! An overloaded engine has three honest answers to a new query: run it
//! now (a slot is free), make it wait (briefly, in a bounded queue), or
//! shed it immediately (queue full). [`AdmissionController`] implements
//! exactly that — `max_concurrent` slots, `max_queue` waiters, and a
//! `queue_timeout` after which a waiter gives up — so load spikes turn
//! into fast typed [`AdmissionError`]s instead of unbounded latency.
//!
//! Built on `std::sync::{Mutex, Condvar}`: waiters only ever block in
//! `wait_timeout`, so no queued query can sleep past its configured bound
//! even if a permit holder leaks (permits release on drop regardless).

use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Sizing knobs for an [`AdmissionController`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Queries allowed to execute simultaneously.
    pub max_concurrent: usize,
    /// Queries allowed to wait for a slot; arrivals beyond this are shed.
    pub max_queue: usize,
    /// How long a queued query waits before giving up with
    /// [`AdmissionError::QueueTimeout`].
    pub queue_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_concurrent: 4,
            max_queue: 16,
            queue_timeout: Duration::from_millis(100),
        }
    }
}

/// Why a query was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The wait queue was already full on arrival; the query was rejected
    /// immediately (load shedding).
    Shed {
        /// Queries executing when the shed happened.
        active: usize,
        /// Queries already queued when the shed happened.
        queued: usize,
    },
    /// The query queued but no slot freed up within the configured
    /// timeout.
    QueueTimeout {
        /// How long the query actually waited.
        waited: Duration,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Shed { active, queued } => write!(
                f,
                "query shed: {active} active and {queued} queued queries already at capacity"
            ),
            AdmissionError::QueueTimeout { waited } => write!(
                f,
                "query timed out after waiting {:.1}ms for an execution slot",
                waited.as_secs_f64() * 1e3
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[derive(Debug, Default)]
struct State {
    active: usize,
    queued: usize,
}

/// Bounded-concurrency gate for query execution (see the module docs).
///
/// Shared as an `Arc` so permits can release it from whichever thread
/// drops them.
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    slot_freed: Condvar,
}

impl AdmissionController {
    /// A controller with the given sizing.
    pub fn new(cfg: AdmissionConfig) -> Arc<Self> {
        Arc::new(AdmissionController {
            cfg,
            state: Mutex::new(State::default()),
            slot_freed: Condvar::new(),
        })
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Currently executing queries (diagnostic snapshot).
    pub fn active(&self) -> usize {
        self.locked().active
    }

    /// Currently queued queries (diagnostic snapshot).
    pub fn queued(&self) -> usize {
        self.locked().queued
    }

    /// Lock the state, recovering from poison: the state is two counters
    /// whose invariants hold at every await point, so a panicking holder
    /// leaves nothing half-updated worth propagating.
    fn locked(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Tries to admit one query: immediate slot, bounded timed wait, or a
    /// typed rejection. On success the returned permit holds the slot
    /// until dropped and records how long admission took.
    pub fn admit(self: &Arc<Self>) -> Result<AdmissionPermit, AdmissionError> {
        let start = Instant::now();
        let mut state = self.locked();
        if state.active < self.cfg.max_concurrent {
            state.active += 1;
            return Ok(AdmissionPermit {
                ctl: Arc::clone(self),
                queue_wait: Duration::ZERO,
                was_queued: false,
            });
        }
        if state.queued >= self.cfg.max_queue {
            return Err(AdmissionError::Shed {
                active: state.active,
                queued: state.queued,
            });
        }
        state.queued += 1;
        let give_up_at = start + self.cfg.queue_timeout;
        loop {
            if state.active < self.cfg.max_concurrent {
                state.active += 1;
                state.queued -= 1;
                return Ok(AdmissionPermit {
                    ctl: Arc::clone(self),
                    queue_wait: start.elapsed(),
                    was_queued: true,
                });
            }
            let now = Instant::now();
            if now >= give_up_at {
                state.queued -= 1;
                return Err(AdmissionError::QueueTimeout {
                    waited: start.elapsed(),
                });
            }
            state = match self.slot_freed.wait_timeout(state, give_up_at - now) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    fn release(&self) {
        let mut state = self.locked();
        state.active = state.active.saturating_sub(1);
        drop(state);
        self.slot_freed.notify_one();
    }
}

/// Proof of admission: holds one execution slot, released on drop.
#[derive(Debug)]
pub struct AdmissionPermit {
    ctl: Arc<AdmissionController>,
    queue_wait: Duration,
    was_queued: bool,
}

impl AdmissionPermit {
    /// How long this query waited in the admission queue (zero when a slot
    /// was free on arrival).
    pub fn queue_wait(&self) -> Duration {
        self.queue_wait
    }

    /// Whether the query had to queue at all.
    pub fn was_queued(&self) -> bool {
        self.was_queued
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.ctl.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(max_concurrent: usize, max_queue: usize) -> Arc<AdmissionController> {
        AdmissionController::new(AdmissionConfig {
            max_concurrent,
            max_queue,
            queue_timeout: Duration::from_millis(20),
        })
    }

    #[test]
    fn admits_up_to_the_concurrency_limit() {
        let ctl = tiny(2, 4);
        let a = ctl.admit().expect("slot 1");
        let b = ctl.admit().expect("slot 2");
        assert_eq!(ctl.active(), 2);
        assert!(!a.was_queued() && !b.was_queued());
        assert_eq!(a.queue_wait(), Duration::ZERO);
        drop(a);
        drop(b);
        assert_eq!(ctl.active(), 0);
    }

    #[test]
    fn releases_slots_on_drop() {
        let ctl = tiny(1, 0);
        let permit = ctl.admit().expect("first");
        drop(permit);
        let again = ctl.admit().expect("slot came back");
        drop(again);
    }

    #[test]
    fn sheds_when_the_queue_is_full() {
        let ctl = tiny(1, 0);
        let held = ctl.admit().expect("slot");
        match ctl.admit() {
            Err(AdmissionError::Shed { active, queued }) => {
                assert_eq!((active, queued), (1, 0));
            }
            other => panic!("expected Shed, got {other:?}"),
        }
        drop(held);
    }

    #[test]
    fn queued_query_times_out_when_no_slot_frees() {
        let ctl = tiny(1, 1);
        let held = ctl.admit().expect("slot");
        match ctl.admit() {
            Err(AdmissionError::QueueTimeout { waited }) => {
                assert!(waited >= Duration::from_millis(20), "waited {waited:?}");
            }
            other => panic!("expected QueueTimeout, got {other:?}"),
        }
        assert_eq!(ctl.queued(), 0, "timed-out waiter left the queue");
        drop(held);
    }

    #[test]
    fn queued_query_gets_the_slot_when_it_frees() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_concurrent: 1,
            max_queue: 1,
            queue_timeout: Duration::from_secs(5),
        });
        let held = ctl.admit().expect("slot");
        let waiter = {
            let ctl = Arc::clone(&ctl);
            std::thread::spawn(move || ctl.admit())
        };
        // Give the waiter time to enqueue, then free the slot.
        while ctl.queued() == 0 {
            std::thread::yield_now();
        }
        drop(held);
        let permit = waiter
            .join()
            .expect("waiter thread")
            .expect("queued query admitted once the slot freed");
        assert!(permit.was_queued());
        drop(permit);
        assert_eq!(ctl.active(), 0);
    }

    #[test]
    fn errors_render_for_operators() {
        let shed = AdmissionError::Shed {
            active: 4,
            queued: 16,
        };
        assert!(shed.to_string().contains("4 active"));
        let timeout = AdmissionError::QueueTimeout {
            waited: Duration::from_millis(100),
        };
        assert!(timeout.to_string().contains("100.0ms"));
    }
}
