//! Query results.

use crowd_store::{GroupStats, TaskId, WorkerId};
use std::fmt;
use std::time::Duration;

/// One ranked worker row from a `SELECT WORKERS` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedWorker {
    /// The worker.
    pub worker: WorkerId,
    /// Display handle.
    pub handle: String,
    /// Predicted performance score.
    pub score: f64,
}

/// The result table of one `SELECT WORKERS` statement: the ranked rows plus
/// execution annotations (degraded prefix? how long did admission queueing
/// and execution take?).
///
/// Derefs to `[SelectedWorker]`, so existing row-oriented call sites keep
/// working: `table.len()`, `table[0].handle`, `table.iter()`, `&table`
/// iteration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerTable {
    /// The ranked rows.
    pub rows: Vec<SelectedWorker>,
    /// `true` when a deadline or work budget fired mid-execution under
    /// [`crate::DegradePolicy::Partial`]: the rows are an honestly-scored
    /// *prefix* of the candidate pool, not the full ranking.
    pub degraded: bool,
    /// Time spent waiting in the admission queue, when the query went
    /// through an [`crate::AdmissionController`].
    pub queue_wait: Option<Duration>,
    /// Total wall-clock execution time, when the query ran with a
    /// constrained [`crate::QueryContext`] or through admission control.
    pub elapsed: Option<Duration>,
}

impl From<Vec<SelectedWorker>> for WorkerTable {
    fn from(rows: Vec<SelectedWorker>) -> Self {
        WorkerTable {
            rows,
            ..WorkerTable::default()
        }
    }
}

impl std::ops::Deref for WorkerTable {
    type Target = [SelectedWorker];
    fn deref(&self) -> &Self::Target {
        &self.rows
    }
}

impl<'a> IntoIterator for &'a WorkerTable {
    type Item = &'a SelectedWorker;
    type IntoIter = std::slice::Iter<'a, SelectedWorker>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

/// What a statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// A new worker id from `INSERT WORKER`.
    WorkerInserted(WorkerId),
    /// A new task id from `INSERT TASK`.
    TaskInserted(TaskId),
    /// Acknowledgement with a short description (assign/feedback/answer).
    Ack(String),
    /// `TRAIN MODEL` finished: iterations and final ELBO.
    Trained {
        /// EM iterations run.
        iterations: usize,
        /// Final evidence lower bound.
        elbo: f64,
        /// Whether the tolerance fired.
        converged: bool,
    },
    /// Ranked workers from `SELECT WORKERS`.
    Workers(WorkerTable),
    /// `SHOW STATS` totals.
    Stats {
        /// Worker count.
        workers: usize,
        /// Task count.
        tasks: usize,
        /// Assignment count.
        assignments: usize,
        /// Scored-assignment count.
        resolved: usize,
        /// Distinct vocabulary size.
        vocab: usize,
        /// Whether a trained model is loaded.
        trained: bool,
    },
    /// `SHOW WORKER` detail.
    WorkerDetail {
        /// The worker.
        worker: WorkerId,
        /// Handle.
        handle: String,
        /// Resolved-task participation count.
        resolved_tasks: usize,
        /// Learned latent skills (empty before `TRAIN MODEL`).
        skills: Vec<f64>,
    },
    /// `SHOW TASK` detail.
    TaskDetail {
        /// The task.
        task: TaskId,
        /// Stored text.
        text: String,
        /// Scored answers `(worker, score)`.
        scores: Vec<(WorkerId, f64)>,
    },
    /// `SHOW GROUPS` rows.
    Groups(Vec<GroupStats>),
    /// `SHOW SIMILAR` rows: `(task, text, cosine similarity)`.
    SimilarTasks(Vec<(TaskId, String, f64)>),
    /// `EXPLAIN` output: the deterministic rendering of the inner
    /// statement's logical plan (see [`crate::plan::LogicalPlan::render`]).
    Plan(String),
}

impl fmt::Display for QueryOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryOutput::WorkerInserted(w) => write!(f, "inserted worker {w}"),
            QueryOutput::TaskInserted(t) => write!(f, "inserted task {t}"),
            QueryOutput::Ack(msg) => write!(f, "ok: {msg}"),
            QueryOutput::Trained {
                iterations,
                elbo,
                converged,
            } => write!(
                f,
                "model trained: {iterations} iterations, ELBO {elbo:.3}{}",
                if *converged { " (converged)" } else { "" }
            ),
            QueryOutput::Workers(table) => {
                writeln!(f, "{:<8} {:<20} {:>10}", "worker", "handle", "score")?;
                for r in table {
                    writeln!(
                        f,
                        "{:<8} {:<20} {:>10.4}",
                        r.worker.to_string(),
                        r.handle,
                        r.score
                    )?;
                }
                if table.degraded {
                    writeln!(f, "(degraded: partial ranking — deadline or budget hit)")?;
                }
                if table.queue_wait.is_some() || table.elapsed.is_some() {
                    let mut parts = Vec::new();
                    if let Some(q) = table.queue_wait {
                        parts.push(format!("queued {:.1}ms", q.as_secs_f64() * 1e3));
                    }
                    if let Some(e) = table.elapsed {
                        parts.push(format!("elapsed {:.1}ms", e.as_secs_f64() * 1e3));
                    }
                    writeln!(f, "({})", parts.join(", "))?;
                }
                Ok(())
            }
            QueryOutput::Stats {
                workers,
                tasks,
                assignments,
                resolved,
                vocab,
                trained,
            } => write!(
                f,
                "workers {workers} | tasks {tasks} | assignments {assignments} | \
                 resolved {resolved} | vocab {vocab} | model {}",
                if *trained { "trained" } else { "untrained" }
            ),
            QueryOutput::WorkerDetail {
                worker,
                handle,
                resolved_tasks,
                skills,
            } => {
                write!(
                    f,
                    "{worker} '{handle}': {resolved_tasks} resolved tasks; skills {:?}",
                    skills
                        .iter()
                        .map(|s| (s * 1000.0).round() / 1000.0)
                        .collect::<Vec<_>>()
                )
            }
            QueryOutput::TaskDetail { task, text, scores } => {
                writeln!(f, "{task}: {text:?}")?;
                for (w, s) in scores {
                    writeln!(f, "  {w} scored {s}")?;
                }
                Ok(())
            }
            QueryOutput::SimilarTasks(rows) => {
                writeln!(f, "{:<8} {:>10}  text", "task", "cosine")?;
                for (t, text, sim) in rows {
                    writeln!(f, "{:<8} {:>10.3}  {:?}", t.to_string(), sim, text)?;
                }
                Ok(())
            }
            QueryOutput::Plan(text) => f.write_str(text),
            QueryOutput::Groups(rows) => {
                writeln!(f, "{:<12} {:>8} {:>10}", "threshold", "size", "coverage")?;
                for g in rows {
                    writeln!(f, "{:<12} {:>8} {:>10.3}", g.threshold, g.size, g.coverage)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_every_variant() {
        let outputs = vec![
            QueryOutput::WorkerInserted(WorkerId(1)),
            QueryOutput::TaskInserted(TaskId(2)),
            QueryOutput::Ack("assigned".into()),
            QueryOutput::Trained {
                iterations: 5,
                elbo: -12.5,
                converged: true,
            },
            QueryOutput::Workers(
                vec![SelectedWorker {
                    worker: WorkerId(0),
                    handle: "ada".into(),
                    score: 1.25,
                }]
                .into(),
            ),
            QueryOutput::Stats {
                workers: 1,
                tasks: 2,
                assignments: 3,
                resolved: 2,
                vocab: 10,
                trained: false,
            },
            QueryOutput::WorkerDetail {
                worker: WorkerId(0),
                handle: "ada".into(),
                resolved_tasks: 4,
                skills: vec![0.5, 1.5],
            },
            QueryOutput::TaskDetail {
                task: TaskId(0),
                text: "q".into(),
                scores: vec![(WorkerId(0), 3.0)],
            },
            QueryOutput::Groups(vec![GroupStats {
                threshold: 5,
                size: 10,
                coverage: 0.9,
            }]),
            QueryOutput::Plan("v0 <- Inspect stats\n".into()),
        ];
        for o in outputs {
            assert!(!o.to_string().is_empty());
        }
    }

    #[test]
    fn workers_table_contains_scores() {
        let o = QueryOutput::Workers(
            vec![SelectedWorker {
                worker: WorkerId(3),
                handle: "carl".into(),
                score: 2.0,
            }]
            .into(),
        );
        let s = o.to_string();
        assert!(s.contains("w3"));
        assert!(s.contains("carl"));
        assert!(s.contains("2.0000"));
        assert!(!s.contains("degraded"), "complete results carry no marker");
    }

    #[test]
    fn degraded_and_timed_tables_render_annotations() {
        let table = WorkerTable {
            rows: vec![SelectedWorker {
                worker: WorkerId(1),
                handle: "bo".into(),
                score: 1.0,
            }],
            degraded: true,
            queue_wait: Some(Duration::from_millis(3)),
            elapsed: Some(Duration::from_millis(12)),
        };
        assert_eq!(table.len(), 1, "Deref to the row slice works");
        assert_eq!((&table).into_iter().count(), 1);
        let s = QueryOutput::Workers(table).to_string();
        assert!(s.contains("degraded"), "{s}");
        assert!(s.contains("queued 3.0ms"), "{s}");
        assert!(s.contains("elapsed 12.0ms"), "{s}");
    }
}
