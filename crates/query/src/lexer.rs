//! Tokenizer for the crowd-query language.

use crate::QueryError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare word (keyword or identifier); stored uppercased for keywords
    /// matching, original case kept alongside.
    Word(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped to `'`).
    Str(String),
    /// Numeric literal.
    Number(f64),
    /// `,`
    Comma,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

impl Token {
    /// Human-readable rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Word(w) => format!("'{w}'"),
            Token::Str(s) => format!("string '{s}'"),
            Token::Number(n) => format!("number {n}"),
            Token::Comma => "','".into(),
            Token::Ge => "'>='".into(),
            Token::Eq => "'='".into(),
        }
    }
}

/// Tokenizes one statement.
pub fn lex(input: &str) -> Result<Vec<Token>, QueryError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == ',' {
            tokens.push(Token::Comma);
            i += 1;
        } else if c == '=' {
            tokens.push(Token::Eq);
            i += 1;
        } else if c == '>' {
            if bytes.get(i + 1) == Some(&'=') {
                tokens.push(Token::Ge);
                i += 2;
            } else {
                return Err(QueryError::Lex {
                    position: i,
                    message: "'>' must be followed by '=' (only >= is supported)".into(),
                });
            }
        } else if c == '\'' {
            // String literal with '' escaping.
            let mut s = String::new();
            let mut j = i + 1;
            loop {
                match bytes.get(j) {
                    None => {
                        return Err(QueryError::Lex {
                            position: i,
                            message: "unterminated string literal".into(),
                        })
                    }
                    Some('\'') if bytes.get(j + 1) == Some(&'\'') => {
                        s.push('\'');
                        j += 2;
                    }
                    Some('\'') => {
                        j += 1;
                        break;
                    }
                    Some(&ch) => {
                        s.push(ch);
                        j += 1;
                    }
                }
            }
            tokens.push(Token::Str(s));
            i = j;
        } else if c.is_ascii_digit()
            || (c == '-' && matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit()))
        {
            let start = i;
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let n = text.parse::<f64>().map_err(|e| QueryError::Lex {
                position: start,
                message: format!("bad number {text:?}: {e}"),
            })?;
            tokens.push(Token::Number(n));
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            tokens.push(Token::Word(bytes[start..i].iter().collect()));
        } else {
            return Err(QueryError::Lex {
                position: i,
                message: format!("unexpected character {c:?}"),
            });
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_numbers_and_strings() {
        let toks = lex("SELECT workers 'b+ tree' 3 2.5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Word("workers".into()),
                Token::Str("b+ tree".into()),
                Token::Number(3.0),
                Token::Number(2.5),
            ]
        );
    }

    #[test]
    fn operators_and_commas() {
        let toks = lex("GROUP >= 5, 9 = x").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("GROUP".into()),
                Token::Ge,
                Token::Number(5.0),
                Token::Comma,
                Token::Number(9.0),
                Token::Eq,
                Token::Word("x".into()),
            ]
        );
    }

    #[test]
    fn quote_escaping() {
        let toks = lex("'it''s quoted'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's quoted".into())]);
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(lex("-2.5").unwrap(), vec![Token::Number(-2.5)]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("'oops"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn bare_gt_errors() {
        assert!(matches!(lex("GROUP > 5"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn weird_character_errors() {
        assert!(matches!(lex("SELECT ;"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(lex("   ").unwrap().is_empty());
    }
}
