//! Tokenizer for the crowd-query language.

use crate::QueryError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare word (keyword or identifier); stored uppercased for keywords
    /// matching, original case kept alongside.
    Word(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped to `'`).
    Str(String),
    /// Numeric literal.
    Number(f64),
    /// `,`
    Comma,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

impl Token {
    /// Human-readable rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Word(w) => format!("'{w}'"),
            Token::Str(s) => format!("string '{s}'"),
            Token::Number(n) => format!("number {n}"),
            Token::Comma => "','".into(),
            Token::Ge => "'>='".into(),
            Token::Eq => "'='".into(),
        }
    }
}

/// A token plus the byte offset of its first character in the input, so the
/// parser can point error messages at the exact spot.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset (not char index) where the token starts.
    pub position: usize,
}

/// Tokenizes one statement, dropping the positions. Convenience wrapper over
/// [`lex_spanned`] for callers that only need the token stream.
pub fn lex(input: &str) -> Result<Vec<Token>, QueryError> {
    Ok(lex_spanned(input)?.into_iter().map(|t| t.token).collect())
}

/// Tokenizes one statement, tagging every token with its byte offset.
pub fn lex_spanned(input: &str) -> Result<Vec<SpannedToken>, QueryError> {
    let mut tokens = Vec::new();
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let mut i = 0;
    while i < chars.len() {
        let (pos, c) = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == ',' {
            tokens.push(SpannedToken {
                token: Token::Comma,
                position: pos,
            });
            i += 1;
        } else if c == '=' {
            tokens.push(SpannedToken {
                token: Token::Eq,
                position: pos,
            });
            i += 1;
        } else if c == '>' {
            if matches!(chars.get(i + 1), Some((_, '='))) {
                tokens.push(SpannedToken {
                    token: Token::Ge,
                    position: pos,
                });
                i += 2;
            } else {
                return Err(QueryError::Lex {
                    position: pos,
                    message: "'>' must be followed by '=' (only >= is supported)".into(),
                });
            }
        } else if c == '\'' {
            // String literal with '' escaping.
            let mut s = String::new();
            let mut j = i + 1;
            loop {
                match chars.get(j) {
                    None => {
                        return Err(QueryError::Lex {
                            position: pos,
                            message: "unterminated string literal".into(),
                        })
                    }
                    Some((_, '\'')) if matches!(chars.get(j + 1), Some((_, '\''))) => {
                        s.push('\'');
                        j += 2;
                    }
                    Some((_, '\'')) => {
                        j += 1;
                        break;
                    }
                    Some(&(_, ch)) => {
                        s.push(ch);
                        j += 1;
                    }
                }
            }
            tokens.push(SpannedToken {
                token: Token::Str(s),
                position: pos,
            });
            i = j;
        } else if c.is_ascii_digit()
            || (c == '-' && matches!(chars.get(i + 1), Some((_, d)) if d.is_ascii_digit()))
        {
            let start = i;
            i += 1;
            while i < chars.len() && (chars[i].1.is_ascii_digit() || chars[i].1 == '.') {
                i += 1;
            }
            let text: String = chars[start..i].iter().map(|&(_, ch)| ch).collect();
            let n = text.parse::<f64>().map_err(|e| QueryError::Lex {
                position: pos,
                message: format!("bad number {text:?}: {e}"),
            })?;
            tokens.push(SpannedToken {
                token: Token::Number(n),
                position: pos,
            });
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].1.is_alphanumeric() || chars[i].1 == '_') {
                i += 1;
            }
            tokens.push(SpannedToken {
                token: Token::Word(chars[start..i].iter().map(|&(_, ch)| ch).collect()),
                position: pos,
            });
        } else {
            return Err(QueryError::Lex {
                position: pos,
                message: format!("unexpected character {c:?}"),
            });
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_numbers_and_strings() {
        let toks = lex("SELECT workers 'b+ tree' 3 2.5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Word("workers".into()),
                Token::Str("b+ tree".into()),
                Token::Number(3.0),
                Token::Number(2.5),
            ]
        );
    }

    #[test]
    fn operators_and_commas() {
        let toks = lex("GROUP >= 5, 9 = x").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("GROUP".into()),
                Token::Ge,
                Token::Number(5.0),
                Token::Comma,
                Token::Number(9.0),
                Token::Eq,
                Token::Word("x".into()),
            ]
        );
    }

    #[test]
    fn quote_escaping() {
        let toks = lex("'it''s quoted'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's quoted".into())]);
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(lex("-2.5").unwrap(), vec![Token::Number(-2.5)]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("'oops"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn bare_gt_errors() {
        assert!(matches!(lex("GROUP > 5"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn weird_character_errors() {
        assert!(matches!(lex("SELECT ;"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(lex("   ").unwrap().is_empty());
    }

    #[test]
    fn spanned_tokens_carry_offsets() {
        let input = "SHOW  GROUPS 1,25";
        let positions: Vec<(Token, usize)> = lex_spanned(input)
            .unwrap()
            .into_iter()
            .map(|t| (t.token, t.position))
            .collect();
        assert_eq!(
            positions,
            vec![
                (Token::Word("SHOW".into()), 0),
                (Token::Word("GROUPS".into()), 6),
                (Token::Number(1.0), 13),
                (Token::Comma, 14),
                (Token::Number(25.0), 15),
            ]
        );
    }

    #[test]
    fn offsets_are_bytes_not_chars() {
        // 'é' occupies two bytes: the token after the literal starts at the
        // byte offset a caller can slice the input with.
        let input = "'café' 7";
        let toks = lex_spanned(input).unwrap();
        assert_eq!(toks[0].position, 0);
        assert_eq!(toks[1].position, 8);
        assert_eq!(&input[toks[1].position..], "7");
    }

    #[test]
    fn lex_errors_report_byte_positions() {
        let input = "café ;";
        let Err(QueryError::Lex { position, .. }) = lex(input) else {
            panic!("expected a lex error");
        };
        assert_eq!(&input[position..], ";");
    }
}
