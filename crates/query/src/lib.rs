#![warn(missing_docs)]

//! A small crowd-selection query language over the crowdsourcing database.
//!
//! The paper frames crowd-selection as *query processing in crowdsourcing
//! databases*; this crate makes that literal. A SQL-flavoured language
//! covers the operations of Figure 1 — crowd insertion, crowd update,
//! crowd retrieval, model training and top-k selection queries:
//!
//! ```text
//! INSERT WORKER 'ada'
//! INSERT TASK 'advantages of b+ tree over b tree'
//! ASSIGN WORKER 0 TO TASK 0
//! FEEDBACK WORKER 0 ON TASK 0 SCORE 4
//! TRAIN MODEL WITH 8 CATEGORIES
//! SELECT WORKERS FOR TASK 'why does a btree split pages' LIMIT 2
//! SELECT WORKERS FOR TASK 'gc pauses in my service' LIMIT 3 USING vsm WHERE GROUP >= 5
//! SHOW STATS
//! SHOW WORKER 0
//! SHOW GROUPS 1, 5, 9
//! EXPLAIN SELECT WORKERS FOR TASK 'why does a btree split pages' LIMIT 2
//! ```
//!
//! Pipeline: [`parse`] → [`Statement`] → compile ([`plan::compile`]) →
//! [`LogicalPlan`] → execute (`exec`, instrumented per plan node) →
//! [`QueryOutput`]. [`QueryEngine::execute`] is a thin facade over that
//! pipeline; `EXPLAIN <statement>` stops after compilation and renders the
//! plan deterministically. The engine owns a [`crowd_store::CrowdDb`] and a
//! [`crowd_select::SelectorRegistry`]; a `USING <backend>` clause is
//! resolved by name against the registry at execution time, so any
//! registered [`crowd_select::SelectorBackend`] — the standard four
//! (`tdpm`, `vsm`, `drm`, `tspm`) or a custom one passed to
//! [`QueryEngine::with_db_and_registry`] — is queryable without engine
//! changes.
//!
//! **Robustness.** Execution is deadline-aware, cancellable and
//! admission-controlled: a [`QueryContext`] (deadline + [`CancelToken`] +
//! work budget + [`DegradePolicy`]) rides along
//! [`QueryEngine::run_with`] / [`QueryEngine::execute_plan_with`] and is
//! checkpointed at every plan-node boundary *and* inside the dense scoring
//! kernels; an [`AdmissionController`]
//! ([`QueryEngine::set_admission`]) bounds concurrency with a bounded,
//! timed wait queue; transient storage failures retry with bounded
//! backoff ([`RetryPolicy`]); and a seeded
//! [`crowd_sim::QueryFaultPlan`] can be armed
//! ([`QueryEngine::set_fault_injection`]) to drive deterministic
//! query-layer chaos testing.

pub mod admission;
pub mod ast;
mod cache;
pub mod engine;
pub mod error;
mod exec;
pub mod lexer;
pub mod output;
pub mod parser;
pub mod plan;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionError, AdmissionPermit};
pub use ast::{BackendName, ShowTarget, Statement};
pub use crowd_core::Precision;
pub use engine::QueryEngine;
pub use error::QueryError;
pub use exec::faults::RetryPolicy;
pub use exec::{CancelToken, CtxGuard, DegradePolicy, Interruption, QueryContext};
pub use output::{QueryOutput, SelectedWorker, WorkerTable};
pub use parser::parse;
pub use plan::{CacheDecision, LogicalPlan, MutationOp, PlanNode, VarId};
