//! Property tests: every renderable statement parses back to itself.

use crowd_query::ast::{BackendName, ShowTarget, Statement};
use crowd_query::parse;
use crowd_store::{TaskId, WorkerId};
use proptest::prelude::*;

/// Text safe inside our single-quoted literals (printable, no control chars;
/// quotes are escaped by Display).
fn arb_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 +#'_.,?-]{1,40}"
}

/// Backend names round-trip through `USING <word>`: any lowercase identifier
/// works, since the engine (not the parser) validates names.
fn arb_backend() -> impl Strategy<Value = BackendName> {
    "[a-z][a-z0-9_]{0,15}".prop_map(BackendName::new)
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    // EXPLAIN wraps any statement, including another EXPLAIN — cover plain,
    // singly- and doubly-wrapped forms.
    prop_oneof![
        arb_plain_statement(),
        arb_plain_statement().prop_map(|s| Statement::Explain(Box::new(s))),
        arb_plain_statement()
            .prop_map(|s| Statement::Explain(Box::new(Statement::Explain(Box::new(s))))),
    ]
}

fn arb_plain_statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        arb_text().prop_map(|handle| Statement::InsertWorker { handle }),
        arb_text().prop_map(|text| Statement::InsertTask { text }),
        (0u32..100, 0u32..100).prop_map(|(w, t)| Statement::Assign {
            worker: WorkerId(w),
            task: TaskId(t)
        }),
        // Scores rendered via Display must re-parse exactly: stick to values
        // with short decimal expansions.
        (0u32..100, 0u32..100, 0i32..200).prop_map(|(w, t, s)| Statement::Feedback {
            worker: WorkerId(w),
            task: TaskId(t),
            score: f64::from(s) / 4.0,
        }),
        (0u32..100, 0u32..100, arb_text()).prop_map(|(w, t, text)| Statement::Answer {
            worker: WorkerId(w),
            task: TaskId(t),
            text
        }),
        (1usize..100).prop_map(|categories| Statement::TrainModel { categories }),
        (
            arb_text(),
            1usize..20,
            arb_backend(),
            prop::option::of(0usize..50)
        )
            .prop_map(
                |(text, limit, backend, min_group)| Statement::SelectWorkers {
                    text,
                    limit,
                    backend,
                    min_group
                }
            ),
        Just(Statement::Show(ShowTarget::Stats)),
        (0u32..100).prop_map(|w| Statement::Show(ShowTarget::Worker(WorkerId(w)))),
        (0u32..100).prop_map(|t| Statement::Show(ShowTarget::Task(TaskId(t)))),
        prop::collection::vec(0usize..50, 1..6)
            .prop_map(|ns| Statement::Show(ShowTarget::Groups(ns))),
        (arb_text(), 1usize..20)
            .prop_map(|(text, limit)| { Statement::Show(ShowTarget::Similar { text, limit }) }),
    ]
}

proptest! {
    /// Display → parse is the identity on the AST.
    #[test]
    fn render_parse_roundtrip(stmt in arb_statement()) {
        let rendered = stmt.to_string();
        let parsed = parse(&rendered)
            .map_err(|e| TestCaseError::fail(format!("{rendered:?}: {e}")))?;
        prop_assert_eq!(parsed, stmt, "rendered: {}", rendered);
    }

    /// The parser never panics on arbitrary input — it returns errors.
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let _ = parse(&input);
    }

    /// Keyword case does not matter.
    #[test]
    fn keywords_are_case_insensitive(upper in proptest::bool::ANY) {
        let stmt = "select workers for task 'q' limit 2 using drm where group >= 3";
        let text = if upper { stmt.to_uppercase().replace("'Q'", "'q'") } else { stmt.into() };
        let parsed = parse(&text).unwrap();
        prop_assert_eq!(
            parsed,
            Statement::SelectWorkers {
                text: "q".into(),
                limit: 2,
                backend: BackendName::new("drm"),
                min_group: Some(3),
            }
        );
    }
}
