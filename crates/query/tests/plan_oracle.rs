//! Oracle property tests for the planner/executor split: executing a
//! compiled plan is *bitwise* identical to calling the selection kernels
//! directly — across backends, thread counts, and projection-cache states.
//!
//! Extends the PR 4 batching oracle: with statements now lowering to
//! logical plans, these tests pin the whole compile → execute pipeline to
//! the raw [`crowd_core::TdpmModel`] / [`crowd_select::CrowdSelector`]
//! results, so a planner or executor regression cannot change a single
//! score bit without failing here.

use crowd_core::TdpmModel;
use crowd_query::output::SelectedWorker;
use crowd_query::{QueryEngine, QueryOutput};
use crowd_select::{BatchQuery, RankedWorker};
use crowd_text::{tokenize_filtered, BagOfWords};
use proptest::prelude::*;

const BACKENDS: &[&str] = &["tdpm", "vsm", "drm", "tspm"];

/// A two-specialist database with a trained TDPM model, built through the
/// query language (same shape as the engine's unit-test fixture).
fn seeded_engine() -> QueryEngine {
    let mut e = QueryEngine::new();
    e.run("INSERT WORKER 'dba'").unwrap();
    e.run("INSERT WORKER 'stat'").unwrap();
    e.run("INSERT WORKER 'generalist'").unwrap();
    let tasks = [
        ("btree page split index buffer disk", 0, 1),
        ("gaussian prior posterior likelihood variance", 1, 0),
        ("btree range scan clustered index", 0, 2),
        ("variational bayes gaussian inference", 1, 2),
        ("btree write amplification buffer pool", 0, 1),
        ("posterior variance of a gaussian", 1, 0),
    ];
    for (i, (text, good, meh)) in tasks.iter().enumerate() {
        e.run(&format!("INSERT TASK '{text}'")).unwrap();
        e.run(&format!("ASSIGN WORKER {good} TO TASK {i}")).unwrap();
        e.run(&format!("ASSIGN WORKER {meh} TO TASK {i}")).unwrap();
        e.run(&format!("FEEDBACK WORKER {good} ON TASK {i} SCORE 4"))
            .unwrap();
        e.run(&format!("FEEDBACK WORKER {meh} ON TASK {i} SCORE 2"))
            .unwrap();
    }
    e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
    e
}

/// Query texts over the seeded vocabulary (plus unknown-word noise).
fn arb_query_text() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("btree"),
            Just("split"),
            Just("gaussian"),
            Just("prior"),
            Just("index"),
            Just("variance"),
            Just("buffer"),
            Just("posterior"),
            Just("zzz"),
        ],
        1..6,
    )
    .prop_map(|ws| ws.join(" "))
}

fn assert_bits_equal(planned: &[SelectedWorker], direct: &[RankedWorker], ctx: &str) {
    assert_eq!(planned.len(), direct.len(), "{ctx}: row count");
    for (p, d) in planned.iter().zip(direct) {
        assert_eq!(p.worker, d.worker, "{ctx}: worker order");
        assert_eq!(
            p.score.to_bits(),
            d.score.to_bits(),
            "{ctx}: score bits for {} ({} vs {})",
            p.worker,
            p.score,
            d.score
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Planned execution (single statements AND the fused batch plan, cold
    /// and warm projection cache) returns exactly the bits of the direct
    /// kernel calls, for every backend — and the TDPM kernel itself is
    /// thread-count invariant, so the planned result matches the dense path
    /// at 1, 2 and 8 serving threads.
    #[test]
    fn planned_execution_matches_direct_kernels(
        texts in prop::collection::vec(arb_query_text(), 1..5),
        k in 1usize..6,
    ) {
        let mut e = seeded_engine();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();

        for backend in BACKENDS {
            // Fused batch plan (Scan → Bind → Project → Score → TopK → Merge
            // over every text at once). First run is the cold-cache state.
            let planned_batch = e.select_workers_batch(&refs, k, backend, None).unwrap();
            // Second run hits the projection cache for TDPM: bits must not move.
            let planned_warm = e.select_workers_batch(&refs, k, backend, None).unwrap();

            // Single-statement plans, one per text (cache now warm).
            let mut planned_single = Vec::new();
            for text in &texts {
                let out = e
                    .run(&format!(
                        "SELECT WORKERS FOR TASK '{text}' LIMIT {k} USING {backend}"
                    ))
                    .unwrap();
                let QueryOutput::Workers(rows) = out else {
                    panic!("expected workers");
                };
                planned_single.push(rows);
            }

            // Direct oracle: raw kernel calls against the serving snapshot,
            // bypassing parser, plan and executor entirely.
            let candidates: Vec<_> = e.db().worker_ids().collect();
            let bows: Vec<BagOfWords> = texts
                .iter()
                .map(|t| BagOfWords::from_known_tokens(&tokenize_filtered(t), e.db().vocab()))
                .collect();
            let fitted = e.fitted(backend).unwrap();
            let direct: Vec<Vec<RankedWorker>> = match fitted.downcast_ref::<TdpmModel>() {
                Some(model) => bows
                    .iter()
                    .map(|bow| {
                        let projection = model.project_bow(bow);
                        let base = model.select_top_k_with_threads(
                            &projection,
                            candidates.iter().copied(),
                            k,
                            1,
                        );
                        // Thread-count invariance of the kernel the plan runs.
                        for threads in [2usize, 8] {
                            let other = model.select_top_k_with_threads(
                                &projection,
                                candidates.iter().copied(),
                                k,
                                threads,
                            );
                            prop_assert_eq!(base.len(), other.len());
                            for (a, b) in base.iter().zip(&other) {
                                prop_assert_eq!(a.worker, b.worker);
                                prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
                            }
                        }
                        Ok(base)
                    })
                    .collect::<Result<_, TestCaseError>>()?,
                None => {
                    let queries: Vec<BatchQuery<'_>> = bows
                        .iter()
                        .map(|bow| BatchQuery {
                            bow,
                            candidates: &candidates,
                            task: None,
                        })
                        .collect();
                    fitted.select_batch(&queries, k)
                }
            };

            prop_assert_eq!(direct.len(), texts.len());
            for (i, want) in direct.iter().enumerate() {
                assert_bits_equal(&planned_batch[i], want, &format!("{backend} batch[{i}] cold"));
                assert_bits_equal(&planned_warm[i], want, &format!("{backend} batch[{i}] warm"));
                assert_bits_equal(&planned_single[i], want, &format!("{backend} single[{i}]"));
            }
        }
    }

    /// The `WHERE GROUP >= n` filter flows through Scan identically to
    /// hand-filtering the pool before a direct kernel call.
    #[test]
    fn planned_group_filter_matches_filtered_direct_call(
        text in arb_query_text(),
        min_group in 1usize..8,
        k in 1usize..6,
    ) {
        let mut e = seeded_engine();
        let stmt = format!(
            "SELECT WORKERS FOR TASK '{text}' LIMIT {k} USING vsm WHERE GROUP >= {min_group}"
        );
        let planned = e.run(&stmt);
        let pool: Vec<_> = e
            .db()
            .worker_ids()
            .filter(|&w| e.db().worker_task_count(w) >= min_group)
            .collect();
        if pool.is_empty() {
            prop_assert!(planned.is_err(), "empty pool must error");
            return Ok(());
        }
        let QueryOutput::Workers(rows) = planned.unwrap() else {
            panic!("expected workers");
        };
        let bow = BagOfWords::from_known_tokens(&tokenize_filtered(&text), e.db().vocab());
        let direct = e.fitted("vsm").unwrap().selector().select(&bow, &pool, k);
        assert_bits_equal(&rows, &direct, "vsm filtered");
    }
}
