//! Golden snapshots: every statement form lowers to a stable `EXPLAIN`
//! rendering, committed as fixtures under `tests/fixtures/explain/`.
//!
//! On drift, rerun with `UPDATE_EXPLAIN_FIXTURES=1` to regenerate — and
//! review the diff: a changed rendering is a changed plan contract.

use crowd_query::{BackendName, QueryEngine, QueryOutput};
use std::path::PathBuf;

/// Every statement form of the language, as `EXPLAIN` inputs.
const CASES: &[(&str, &str)] = &[
    (
        "select_default",
        "EXPLAIN SELECT WORKERS FOR TASK 'why does a btree split pages' LIMIT 2",
    ),
    (
        "select_full",
        "EXPLAIN SELECT WORKERS FOR TASK 'gc pauses in my service' LIMIT 3 USING vsm WHERE GROUP >= 5",
    ),
    (
        "select_unknown_backend",
        "EXPLAIN SELECT WORKERS FOR TASK 'q' USING magic",
    ),
    ("insert_worker", "EXPLAIN INSERT WORKER 'ada'"),
    ("insert_task", "EXPLAIN INSERT TASK 'it''s a btree question'"),
    ("assign", "EXPLAIN ASSIGN WORKER 0 TO TASK 1"),
    ("feedback", "EXPLAIN FEEDBACK WORKER 0 ON TASK 1 SCORE 4.5"),
    (
        "answer",
        "EXPLAIN ANSWER WORKER 0 ON TASK 1 TEXT 'split at the median'",
    ),
    ("train", "EXPLAIN TRAIN MODEL WITH 8 CATEGORIES"),
    ("show_stats", "EXPLAIN SHOW STATS"),
    ("show_worker", "EXPLAIN SHOW WORKER 0"),
    ("show_groups", "EXPLAIN SHOW GROUPS 1, 5, 9"),
    ("show_similar", "EXPLAIN SHOW SIMILAR 'btree split' LIMIT 3"),
    ("explain_explain", "EXPLAIN EXPLAIN SHOW STATS"),
];

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/explain")
        .join(format!("{name}.txt"))
}

fn check(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_EXPLAIN_FIXTURES").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {path:?} ({e}); rerun with UPDATE_EXPLAIN_FIXTURES=1")
    });
    assert_eq!(
        actual, want,
        "EXPLAIN rendering for '{name}' drifted from its fixture; \
         if intended, rerun with UPDATE_EXPLAIN_FIXTURES=1 and review the diff"
    );
}

fn explain(engine: &mut QueryEngine, stmt: &str) -> String {
    match engine.run(stmt).unwrap() {
        QueryOutput::Plan(text) => text,
        other => panic!("EXPLAIN returned {other:?}"),
    }
}

#[test]
fn every_statement_form_has_a_stable_rendering() {
    let mut engine = QueryEngine::new();
    for (name, stmt) in CASES {
        check(name, &explain(&mut engine, stmt));
    }
}

#[test]
fn f32_precision_policy_shows_in_the_rendering() {
    let mut engine = QueryEngine::new();
    engine.set_precision(crowd_query::Precision::F32);
    let text = explain(
        &mut engine,
        "EXPLAIN SELECT WORKERS FOR TASK 'why does a btree split pages' LIMIT 2",
    );
    assert!(text.contains("precision=f32"), "{text}");
    check("select_f32", &text);
}

#[test]
fn fused_select_batches_have_a_stable_rendering() {
    let engine = QueryEngine::new();
    let plan = crowd_query::plan::compile_select_batch(
        &[
            "why does a btree split pages",
            "prior for a gaussian variance",
        ],
        2,
        &BackendName::new("tdpm"),
        Some(2),
        engine.registry(),
    );
    check("select_batched", &plan.render());
}

#[test]
fn renderings_do_not_depend_on_engine_state() {
    // The same statement explains identically on a fresh engine and on one
    // with data, fitted snapshots and a warm projection cache: the rendering
    // is a property of the compiled plan, not of runtime state.
    let mut fresh = QueryEngine::new();
    let before: Vec<String> = CASES
        .iter()
        .map(|(_, stmt)| explain(&mut fresh, stmt))
        .collect();

    let mut warm = QueryEngine::new();
    warm.run("INSERT WORKER 'dba'").unwrap();
    warm.run("INSERT TASK 'btree page split index'").unwrap();
    warm.run("ASSIGN WORKER 0 TO TASK 0").unwrap();
    warm.run("FEEDBACK WORKER 0 ON TASK 0 SCORE 4").unwrap();
    warm.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
    warm.run("SELECT WORKERS FOR TASK 'btree split' LIMIT 1")
        .unwrap();
    for ((_, stmt), want) in CASES.iter().zip(&before) {
        assert_eq!(&explain(&mut warm, stmt), want, "{stmt}");
    }
}
