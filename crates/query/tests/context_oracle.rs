//! Oracle property tests for the robustness layer: a [`QueryContext`]
//! whose guards never fire must be *bitwise* invisible.
//!
//! Extends the PR 6 plan oracle (`plan_oracle.rs`): threading a deadline,
//! a live cancellation token and a generous row budget through the
//! executor — and through the guarded dense kernels at 1, 2 and 8 scoring
//! threads — may not move a single score bit relative to the plain,
//! context-free path on any backend. Degradation, when it *does* fire, is
//! pinned separately in the engine unit tests and the chaos suite; this
//! file pins the "nothing happened" half of the contract.

use crowd_core::TdpmModel;
use crowd_query::output::SelectedWorker;
use crowd_query::{CancelToken, QueryContext, QueryEngine, QueryOutput};
use crowd_text::{tokenize_filtered, BagOfWords};
use proptest::prelude::*;
use std::time::Duration;

const BACKENDS: &[&str] = &["tdpm", "vsm", "drm", "tspm"];

/// Same two-specialist fixture as `plan_oracle.rs`.
fn seeded_engine() -> QueryEngine {
    let mut e = QueryEngine::new();
    e.run("INSERT WORKER 'dba'").unwrap();
    e.run("INSERT WORKER 'stat'").unwrap();
    e.run("INSERT WORKER 'generalist'").unwrap();
    let tasks = [
        ("btree page split index buffer disk", 0, 1),
        ("gaussian prior posterior likelihood variance", 1, 0),
        ("btree range scan clustered index", 0, 2),
        ("variational bayes gaussian inference", 1, 2),
        ("btree write amplification buffer pool", 0, 1),
        ("posterior variance of a gaussian", 1, 0),
    ];
    for (i, (text, good, meh)) in tasks.iter().enumerate() {
        e.run(&format!("INSERT TASK '{text}'")).unwrap();
        e.run(&format!("ASSIGN WORKER {good} TO TASK {i}")).unwrap();
        e.run(&format!("ASSIGN WORKER {meh} TO TASK {i}")).unwrap();
        e.run(&format!("FEEDBACK WORKER {good} ON TASK {i} SCORE 4"))
            .unwrap();
        e.run(&format!("FEEDBACK WORKER {meh} ON TASK {i} SCORE 2"))
            .unwrap();
    }
    e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
    e
}

fn arb_query_text() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("btree"),
            Just("split"),
            Just("gaussian"),
            Just("prior"),
            Just("index"),
            Just("variance"),
            Just("buffer"),
            Just("posterior"),
            Just("zzz"),
        ],
        1..6,
    )
    .prop_map(|ws| ws.join(" "))
}

/// A context with every guard armed but none able to fire within the test.
fn never_firing() -> QueryContext {
    QueryContext::unbounded()
        .with_deadline(Duration::from_secs(3600))
        .with_cancellation(CancelToken::new())
        .with_row_budget(1 << 40)
}

fn assert_rows_equal(guarded: &[SelectedWorker], plain: &[SelectedWorker], ctx: &str) {
    assert_eq!(guarded.len(), plain.len(), "{ctx}: row count");
    for (g, p) in guarded.iter().zip(plain) {
        assert_eq!(g.worker, p.worker, "{ctx}: worker order");
        assert_eq!(g.handle, p.handle, "{ctx}: handle");
        assert_eq!(
            g.score.to_bits(),
            p.score.to_bits(),
            "{ctx}: score bits for {} ({} vs {})",
            g.worker,
            g.score,
            p.score
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single-statement and fused-batch plans under a never-firing context
    /// return exactly the bits of the context-free path, on every backend.
    /// Only the timing annotations may differ; the ranking may not.
    #[test]
    fn never_firing_context_is_bitwise_invisible(
        texts in prop::collection::vec(arb_query_text(), 1..5),
        k in 1usize..6,
    ) {
        let mut e = seeded_engine();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let ctx = never_firing();

        for backend in BACKENDS {
            let plain_batch = e.select_workers_batch(&refs, k, backend, None).unwrap();
            let guarded_batch = e
                .select_workers_batch_with(&refs, k, backend, None, &ctx)
                .unwrap();
            prop_assert_eq!(guarded_batch.len(), plain_batch.len());
            for (i, (g, p)) in guarded_batch.iter().zip(&plain_batch).enumerate() {
                prop_assert!(!g.degraded, "{} batch[{}]", backend, i);
                assert_rows_equal(g, p, &format!("{backend} batch[{i}]"));
            }

            for text in &texts {
                let stmt =
                    format!("SELECT WORKERS FOR TASK '{text}' LIMIT {k} USING {backend}");
                let QueryOutput::Workers(plain) = e.run(&stmt).unwrap() else {
                    panic!("expected workers");
                };
                let QueryOutput::Workers(guarded) = e.run_with(&stmt, &ctx).unwrap() else {
                    panic!("expected workers");
                };
                prop_assert!(!guarded.degraded, "{} single", backend);
                prop_assert!(guarded.elapsed.is_some(), "contextual runs are timed");
                prop_assert!(plain.elapsed.is_none(), "plain runs are not annotated");
                assert_rows_equal(&guarded, &plain, &format!("{backend} single"));
            }
        }
    }

    /// The guarded dense kernel itself is thread-count invariant under a
    /// live context guard: 1, 2 and 8 scoring threads all return the exact
    /// bits of the unguarded single-threaded walk, report the scan as
    /// complete, and account every candidate row.
    #[test]
    fn guarded_kernel_is_thread_invariant_under_a_live_context(
        text in arb_query_text(),
        k in 1usize..6,
    ) {
        let e = seeded_engine();
        let fitted = e.fitted("tdpm").unwrap();
        let model = fitted
            .downcast_ref::<TdpmModel>()
            .expect("tdpm backend carries a TdpmModel");
        let bow = BagOfWords::from_known_tokens(&tokenize_filtered(&text), e.db().vocab());
        let projection = model.project_bow(&bow);
        let candidates: Vec<_> = e.db().worker_ids().collect();
        let resolved = model.skill_matrix().resolve(candidates.iter().copied());

        let base = model.select_top_k_with_threads(
            &projection,
            candidates.iter().copied(),
            k,
            1,
        );
        let ctx = never_firing();
        for threads in [1usize, 2, 8] {
            let partial = model.skill_matrix().select_mean_guarded(
                projection.lambda.as_slice(),
                &resolved,
                k,
                threads,
                &ctx.guard(),
            );
            prop_assert!(partial.complete, "threads={}", threads);
            prop_assert_eq!(partial.scanned, resolved.len(), "threads={}", threads);
            prop_assert_eq!(partial.ranked.len(), base.len(), "threads={}", threads);
            for (g, p) in partial.ranked.iter().zip(&base) {
                prop_assert_eq!(g.worker, p.worker, "threads={}", threads);
                prop_assert_eq!(
                    g.score.to_bits(),
                    p.score.to_bits(),
                    "threads={}",
                    threads
                );
            }
        }
    }
}
