//! Thread-scaling oracle: the persistent scoring pool is *bitwise*
//! invisible at every thread count, on every backend, guarded or not.
//!
//! The serial f64 walk (`TdpmModel::select_top_k_serial` — one hash lookup
//! plus one scattered dot per candidate) is the oracle. Everything the
//! serving layer does on top — the dense contiguous walk, chunking across
//! the persistent [`ScoringPool`] at 2 or 8 threads, the batched blocked
//! kernel, and the [`CtxGuard`]-guarded variants of each — must reproduce
//! its bits exactly:
//!
//! 1. Engine-level: every backend × guarded/unguarded returns identical
//!    rows (backends other than TDPM don't thread, but the oracle pins
//!    that wiring the context through them changes nothing either).
//! 2. Model-level at scale: a candidate pool wide enough to cross the
//!    [`MIN_POOL_CHUNK_ROWS`] floor (so 2 and 8 threads genuinely submit
//!    pooled chunks) is bit-identical to the serial oracle in all of
//!    {1, 2, 8} threads × {unguarded, guarded} × {single, batched}, and
//!    the guarded scans report themselves complete with every row
//!    accounted.
//!
//! [`MIN_POOL_CHUNK_ROWS`]: crowd_core::MIN_POOL_CHUNK_ROWS
//! [`ScoringPool`]: crowd_math::ScoringPool
//! [`CtxGuard`]: crowd_query::CtxGuard

use crowd_core::{RankedWorker, SkillMatrix, TdpmModel, MIN_POOL_CHUNK_ROWS};
use crowd_query::{CancelToken, QueryContext, QueryEngine, QueryOutput};
use crowd_store::WorkerId;
use std::time::Duration;

const BACKENDS: &[&str] = &["tdpm", "vsm", "drm", "tspm"];
const THREADS: &[usize] = &[1, 2, 8];

/// Same two-specialist fixture as `plan_oracle.rs` / `context_oracle.rs`.
fn seeded_engine() -> QueryEngine {
    let mut e = QueryEngine::new();
    e.run("INSERT WORKER 'dba'").unwrap();
    e.run("INSERT WORKER 'stat'").unwrap();
    e.run("INSERT WORKER 'generalist'").unwrap();
    let tasks = [
        ("btree page split index buffer disk", 0, 1),
        ("gaussian prior posterior likelihood variance", 1, 0),
        ("btree range scan clustered index", 0, 2),
        ("variational bayes gaussian inference", 1, 2),
        ("btree write amplification buffer pool", 0, 1),
        ("posterior variance of a gaussian", 1, 0),
    ];
    for (i, (text, good, meh)) in tasks.iter().enumerate() {
        e.run(&format!("INSERT TASK '{text}'")).unwrap();
        e.run(&format!("ASSIGN WORKER {good} TO TASK {i}")).unwrap();
        e.run(&format!("ASSIGN WORKER {meh} TO TASK {i}")).unwrap();
        e.run(&format!("FEEDBACK WORKER {good} ON TASK {i} SCORE 4"))
            .unwrap();
        e.run(&format!("FEEDBACK WORKER {meh} ON TASK {i} SCORE 2"))
            .unwrap();
    }
    e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
    e
}

/// A context with every guard armed but none able to fire within the test.
fn never_firing() -> QueryContext {
    QueryContext::unbounded()
        .with_deadline(Duration::from_secs(3600))
        .with_cancellation(CancelToken::new())
        .with_row_budget(1 << 40)
}

#[test]
fn every_backend_is_bit_identical_guarded_and_unguarded() {
    let mut e = seeded_engine();
    let ctx = never_firing();
    for backend in BACKENDS {
        for (text, k) in [("btree page split", 2), ("gaussian posterior", 3)] {
            let stmt = format!("SELECT WORKERS FOR TASK '{text}' LIMIT {k} USING {backend}");
            let QueryOutput::Workers(plain) = e.run(&stmt).unwrap() else {
                panic!("{stmt}: expected workers");
            };
            let QueryOutput::Workers(guarded) = e.run_with(&stmt, &ctx).unwrap() else {
                panic!("{stmt}: expected workers");
            };
            assert!(!guarded.degraded, "{stmt}: nothing fired");
            assert_eq!(guarded.len(), plain.len(), "{stmt}: row count");
            for (g, p) in guarded.iter().zip(&plain) {
                assert_eq!(g.worker, p.worker, "{stmt}: worker order");
                assert_eq!(
                    g.score.to_bits(),
                    p.score.to_bits(),
                    "{stmt}: score bits for {}",
                    g.worker
                );
            }
        }
    }
}

/// A matrix wide enough that 2 and 8 threads both split into multiple
/// pooled chunks past the [`MIN_POOL_CHUNK_ROWS`] floor.
fn wide_matrix() -> (SkillMatrix, Vec<(WorkerId, usize)>) {
    let n = u32::try_from(4 * MIN_POOL_CHUNK_ROWS).unwrap();
    let mut m = SkillMatrix::new(3);
    for w in 0..n {
        let x = f64::from(w);
        m.upsert(
            WorkerId(w),
            &[(x * 0.713).sin(), (x * 0.291).cos(), (x * 0.107).sin()],
            &[0.1, 0.1, 0.1],
        );
    }
    let resolved = m.resolve_all();
    (m, resolved)
}

fn assert_bits(got: &[RankedWorker], oracle: &[RankedWorker], ctx: &str) {
    assert_eq!(got.len(), oracle.len(), "{ctx}: row count");
    for (g, o) in got.iter().zip(oracle) {
        assert_eq!(g.worker, o.worker, "{ctx}: worker order");
        assert_eq!(
            g.score.to_bits(),
            o.score.to_bits(),
            "{ctx}: score bits for {:?}",
            g.worker
        );
    }
}

#[test]
fn pooled_chunks_match_the_serial_oracle_at_every_thread_count() {
    let (m, resolved) = wide_matrix();
    let lambda = [0.9, -1.7, 0.4];
    let k = 12;
    // Serial oracle at the model layer: the dense single-threaded walk is
    // pinned bit-identical to `select_top_k_serial` by the core property
    // tests; here it anchors the thread sweep.
    let oracle = m.select_mean(&lambda, &resolved, k, 1);
    assert_eq!(oracle.len(), k);

    let ctx = never_firing();
    for &threads in THREADS {
        let plain = m.select_mean(&lambda, &resolved, k, threads);
        assert_bits(&plain, &oracle, &format!("unguarded t{threads}"));

        let guarded = m.select_mean_guarded(&lambda, &resolved, k, threads, &ctx.guard());
        assert!(guarded.complete, "t{threads}: nothing fired");
        assert_eq!(guarded.scanned, resolved.len(), "t{threads}: all rows");
        assert_bits(&guarded.ranked, &oracle, &format!("guarded t{threads}"));
    }
}

#[test]
fn batched_pool_matches_per_query_serial_oracle() {
    let (m, resolved) = wide_matrix();
    let queries: Vec<Vec<f64>> = vec![
        vec![0.9, -1.7, 0.4],
        vec![-0.3, 0.8, 1.1],
        vec![1.0, 0.0, -0.5],
    ];
    let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
    let k = 9;
    let oracles: Vec<Vec<RankedWorker>> = refs
        .iter()
        .map(|q| m.select_mean(q, &resolved, k, 1))
        .collect();

    let ctx = never_firing();
    for &threads in THREADS {
        let plain = m.select_mean_batch(&refs, &resolved, k, threads);
        assert_eq!(plain.len(), oracles.len());
        for (i, (got, oracle)) in plain.iter().zip(&oracles).enumerate() {
            assert_bits(got, oracle, &format!("batch[{i}] t{threads}"));
        }

        let guarded = m.select_mean_batch_guarded(&refs, &resolved, k, threads, &ctx.guard());
        for (i, (got, oracle)) in guarded.iter().zip(&oracles).enumerate() {
            assert!(got.complete, "batch[{i}] t{threads}: nothing fired");
            assert_eq!(got.scanned, resolved.len(), "batch[{i}] t{threads}");
            assert_bits(
                &got.ranked,
                oracle,
                &format!("guarded batch[{i}] t{threads}"),
            );
        }
    }
}

/// The f32 serving path threads through the same pool machinery: whatever
/// precision policy the engine stamps, thread count and guarding stay
/// bitwise invisible *within* that precision.
#[test]
fn f32_pooled_chunks_are_thread_and_guard_invariant() {
    let (m, resolved) = wide_matrix();
    let lambda = [0.9, -1.7, 0.4];
    let k = 12;
    let oracle = m.select_mean_f32(&lambda, &resolved, k, 1);
    let ctx = never_firing();
    for &threads in THREADS {
        let plain = m.select_mean_f32(&lambda, &resolved, k, threads);
        assert_bits(&plain, &oracle, &format!("f32 unguarded t{threads}"));
        let guarded = m.select_mean_f32_guarded(&lambda, &resolved, k, threads, &ctx.guard());
        assert!(guarded.complete, "f32 t{threads}: nothing fired");
        assert_bits(&guarded.ranked, &oracle, &format!("f32 guarded t{threads}"));
    }
}

/// End-to-end sanity for the fitted TDPM model: the dense path the
/// executor dispatches is the serial oracle's bits, and the engine-level
/// f64 default serves exactly those bits through the full pipeline.
#[test]
fn engine_tdpm_serves_the_serial_oracle_bits() {
    let mut e = seeded_engine();
    let fitted = e.fitted("tdpm").unwrap();
    let model = fitted
        .downcast_ref::<TdpmModel>()
        .expect("tdpm backend carries a TdpmModel");
    let candidates: Vec<WorkerId> = e.db().worker_ids().collect();
    let bow = crowd_text::BagOfWords::from_known_tokens(
        &crowd_text::tokenize_filtered("btree page split index"),
        e.db().vocab(),
    );
    let projection = model.project_bow(&bow);
    let serial = model.select_top_k_serial(&projection, candidates.iter().copied(), 2);
    let dense = model.select_top_k(&projection, candidates.iter().copied(), 2);
    assert_bits(&dense, &serial, "fitted dense vs serial");

    let stmt = "SELECT WORKERS FOR TASK 'btree page split index' LIMIT 2 USING tdpm";
    let QueryOutput::Workers(table) = e.run(stmt).unwrap() else {
        panic!("expected workers");
    };
    assert_eq!(table.len(), serial.len());
    for (row, o) in table.iter().zip(&serial) {
        assert_eq!(
            row.score.to_bits(),
            o.score.to_bits(),
            "engine row for {} matches the oracle",
            row.worker
        );
    }
}
