//! Deterministic fault-matrix tests: the end-to-end pipeline under a
//! seeded `crowd_sim::FaultPlan`, one fault class at a time and mixed.
//!
//! The seed comes from `FAULT_SEED` (default 17) so CI can sweep a small
//! matrix of seeds over the same assertions. Every test runs the pipeline
//! twice on identically built state and requires *identical* reports —
//! the recovery machinery (deadlines, reassignment, quorum, pruning) must
//! be a deterministic function of the plan, not of thread timing. The
//! selection backend is VSM (closed-form, no RNG) for the same reason.
//!
//! The crowd is four topic groups of three specialists, and the task
//! stream cycles through the topics, so *every* worker is in the top-k
//! for its own topic — whatever fault the plan assigns a worker, the
//! pipeline is guaranteed to run into it. Counter cross-checks are then
//! derived from the database rather than hardcoded: a no-show worker's
//! delivered assignment always expires, a garbage worker's always burns,
//! so the recovery counters must equal the assignments the faulty
//! workers actually received.

use crowd_baselines::VsmBackend;
use crowd_core::TdpmConfig;
use crowd_platform::pipeline::{BehaviorFn, ScoreFn};
use crowd_platform::{CrowdManager, Pipeline, PipelineConfig, PipelineReport, WorkerReply};
use crowd_sim::{FaultKind, FaultPlan};
use crowd_store::{CrowdDb, TaskId, WorkerId};
use std::sync::Arc;
use std::time::Duration;

const NUM_WORKERS: u32 = 12;
const TOP_K: usize = 3;
const NUM_TASKS: usize = 8;
const TOPICS: [&str; 4] = [
    "btree page split index buffer disk",
    "gaussian prior posterior likelihood variance",
    "network socket packet routing congestion",
    "compiler parser grammar token syntax",
];

/// The seed under test; CI sweeps this via the environment.
fn fault_seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(17)
}

/// Worker `i` specialises in topic `i % 4`; the `i / 4` filler repetitions
/// dilute the cosine so scores inside a group are strictly decreasing
/// (no rank ties to tempt nondeterminism, though `top_k` breaks ties
/// deterministically anyway).
fn crowd_db() -> CrowdDb {
    let mut db = CrowdDb::new();
    for i in 0..NUM_WORKERS {
        let w = db.add_worker(format!("worker-{i}"));
        let filler = "periphery ".repeat((i / 4) as usize);
        let t = db.add_task(format!("{} {filler}", TOPICS[(i % 4) as usize]));
        db.assign(w, t).unwrap();
        db.record_feedback(w, t, 3.0).unwrap();
    }
    db
}

/// Two rounds over the four topics: every specialist group is selected
/// (at least) twice.
fn task_texts() -> Vec<String> {
    (0..NUM_TASKS)
        .map(|i| format!("{} question", TOPICS[i % 4]))
        .collect()
}

fn worker_ids() -> Vec<WorkerId> {
    (0..NUM_WORKERS).map(WorkerId).collect()
}

/// Maps each plan-assigned fault onto a simulated worker behaviour.
fn behavior_for(plan: &FaultPlan) -> Arc<BehaviorFn> {
    let plan = plan.clone();
    Arc::new(move |w, d| match plan.fault_for(w) {
        FaultKind::Healthy => {
            WorkerReply::Answer(format!("solid specialist analysis for {} from {w}", d.task))
        }
        FaultKind::NoShow => WorkerReply::Silent,
        FaultKind::Straggler => WorkerReply::Delayed(
            plan.straggler_delay(),
            format!("overdue answer for {} from {w}", d.task),
        ),
        FaultKind::Disconnect => WorkerReply::Disconnect,
        FaultKind::Garbage => WorkerReply::Answer("?!.. --- !!".into()),
    })
}

fn fault_config() -> PipelineConfig {
    PipelineConfig {
        top_k: TOP_K,
        tdpm: TdpmConfig::default(),
        answer_timeout: Duration::from_millis(150),
        quorum: None,
        max_reassignments: NUM_WORKERS as usize,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        reject_garbage: true,
        ..PipelineConfig::default()
    }
}

/// One full pipeline run over fresh state under the plan's behaviours.
fn run_once(plan: &FaultPlan) -> (PipelineReport, Arc<CrowdManager>) {
    let pipeline = Pipeline::start_with_behavior(
        crowd_db(),
        fault_config(),
        behavior_for(plan),
        Box::new(VsmBackend),
    )
    .unwrap();
    let score_fn: Box<ScoreFn> = Box::new(|_, _, _| 2.5);
    let texts = task_texts();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let report = pipeline.run(&refs, &*score_fn);
    (report, pipeline.shutdown())
}

/// Assignments that the run handed to workers of the given fault kind,
/// read back from the database (history tasks excluded).
fn assignments_to(manager: &CrowdManager, plan: &FaultPlan, kind: FaultKind) -> usize {
    let db = manager.db().read();
    let first_new = db.num_tasks() - NUM_TASKS;
    (first_new..db.num_tasks())
        .map(|t| {
            db.workers_of(TaskId(t as u32))
                .filter(|&(w, _)| plan.fault_for(w) == kind)
                .count()
        })
        .sum()
}

fn healthy_count(plan: &FaultPlan) -> usize {
    plan.workers_with(worker_ids(), FaultKind::Healthy).len()
}

/// Stragglers may still deliver answers after `run` returns (or between
/// runs), so the late-answer tally is the one timing-dependent counter.
/// Everything else must match exactly.
fn assert_reports_identical_modulo_late(mut a: PipelineReport, mut b: PipelineReport) {
    a.late_answers = 0;
    b.late_answers = 0;
    assert_eq!(a, b, "fault recovery must be deterministic per seed");
}

/// The headline acceptance case: 30% of the crowd never answers, yet
/// every task completes through expiry + reassignment — zero
/// abandonments — and the recovery counters equal the injected faults.
#[test]
fn no_show_matrix_completes_every_task_deterministically() {
    let seed = fault_seed();
    let plan = FaultPlan::new(seed).with_no_show(0.3);
    let healthy = healthy_count(&plan);
    assert!(
        healthy >= TOP_K,
        "seed {seed} leaves only {healthy} healthy workers; \
         the plan cannot reach quorum at all"
    );

    let (report, manager) = run_once(&plan);
    assert_eq!(report.tasks_submitted, NUM_TASKS, "{report:?}");
    assert_eq!(report.abandonments, 0, "seed {seed}: {report:?}");
    assert_eq!(report.timeouts, 0);
    assert_eq!(report.answers_collected, TOP_K * NUM_TASKS);
    assert_eq!(report.feedback_applied, TOP_K * NUM_TASKS);

    // Every assignment handed to a no-show expired, and each expiry was
    // recovered by exactly one replacement dispatch.
    let to_no_shows = assignments_to(&manager, &plan, FaultKind::NoShow);
    assert_eq!(report.expired_assignments, to_no_shows, "seed {seed}");
    assert_eq!(report.reassignments, to_no_shows, "seed {seed}");
    assert!(
        to_no_shows > 0,
        "seed {seed} never selected a no-show worker; fault injection \
         did not exercise the recovery path"
    );
    assert_eq!(report.garbage_answers, 0);
    assert_eq!(report.late_answers, 0, "no-shows never answer");
    assert_eq!(report.errors, 0);

    // Same seed, fresh state: byte-identical report.
    let (again, _) = run_once(&plan);
    assert_eq!(report, again, "seed {seed} must reproduce its counters");
}

/// Stragglers answer after the deadline: every assignment they receive
/// expires (the sleep starts only once they pick the dispatch up, so the
/// answer always lands past the deadline) and the late answers change
/// nothing.
#[test]
fn straggler_matrix_expires_and_recovers() {
    let seed = fault_seed();
    let plan = FaultPlan::new(seed)
        .with_straggler(0.25)
        .with_straggler_delay(Duration::from_millis(600));
    let healthy = healthy_count(&plan);
    assert!(healthy >= TOP_K, "seed {seed}: only {healthy} healthy");

    let (report, manager) = run_once(&plan);
    assert_eq!(report.abandonments, 0, "seed {seed}: {report:?}");
    assert_eq!(report.answers_collected, TOP_K * NUM_TASKS);
    let to_stragglers = assignments_to(&manager, &plan, FaultKind::Straggler);
    assert_eq!(report.expired_assignments, to_stragglers, "seed {seed}");
    assert_eq!(report.reassignments, to_stragglers, "seed {seed}");

    let (again, _) = run_once(&plan);
    assert_reports_identical_modulo_late(report, again);
}

/// Disconnecting workers exit on their first dispatch: that one delivered
/// assignment expires like a no-show, and the *next* attempt to reach
/// them finds a dropped inbox, prunes them from the dispatcher, and marks
/// them offline so selection stops proposing them.
#[test]
fn disconnect_matrix_prunes_and_completes() {
    let seed = fault_seed();
    let plan = FaultPlan::new(seed).with_disconnect(0.3);
    let dropped = plan.workers_with(worker_ids(), FaultKind::Disconnect);
    let healthy = healthy_count(&plan);
    assert!(healthy >= TOP_K, "seed {seed}: only {healthy} healthy");
    assert!(
        !dropped.is_empty(),
        "seed {seed} produced no disconnecting workers"
    );

    let (report, _manager) = run_once(&plan);
    assert_eq!(report.abandonments, 0, "seed {seed}: {report:?}");
    assert_eq!(report.answers_collected, TOP_K * NUM_TASKS);
    // Each disconnector accepts exactly one dispatch before its thread
    // exits, so it contributes exactly one expiry — and exactly one
    // pruning, the first time a later dispatch finds the dropped inbox.
    assert_eq!(report.expired_assignments, dropped.len(), "seed {seed}");
    assert_eq!(report.pruned_workers, dropped.len(), "seed {seed}");
    // Expiries, pruned dispatch failures, and any dispatches to an
    // already-pruned worker each trigger a replacement.
    assert!(
        report.reassignments >= report.expired_assignments + report.pruned_workers,
        "seed {seed}: {report:?}"
    );
    assert_eq!(report.errors, 0);

    let (again, _) = run_once(&plan);
    assert_eq!(report, again, "seed {seed} must reproduce its counters");
}

/// Garbage answers are rejected without waiting for the deadline and the
/// assignment is burned and reassigned immediately.
#[test]
fn garbage_matrix_rejects_and_reassigns() {
    let seed = fault_seed();
    let plan = FaultPlan::new(seed).with_garbage(0.3);
    let healthy = healthy_count(&plan);
    assert!(healthy >= TOP_K, "seed {seed}: only {healthy} healthy");

    let (report, manager) = run_once(&plan);
    assert_eq!(report.abandonments, 0, "seed {seed}: {report:?}");
    assert_eq!(report.answers_collected, TOP_K * NUM_TASKS);
    let to_garbage = assignments_to(&manager, &plan, FaultKind::Garbage);
    assert_eq!(report.garbage_answers, to_garbage, "seed {seed}");
    assert_eq!(report.reassignments, to_garbage, "seed {seed}");
    assert_eq!(report.expired_assignments, 0, "garbage burns immediately");

    let (again, _) = run_once(&plan);
    assert_eq!(report, again, "seed {seed} must reproduce its counters");
}

/// All four fault classes at once: the pipeline still completes every
/// task, and the whole report reproduces exactly under the same seed.
#[test]
fn mixed_fault_matrix_is_deterministic_per_seed() {
    let seed = fault_seed();
    let plan = FaultPlan::new(seed)
        .with_no_show(0.15)
        .with_straggler(0.1)
        .with_disconnect(0.1)
        .with_garbage(0.15)
        .with_straggler_delay(Duration::from_millis(600));
    let healthy = healthy_count(&plan);
    assert!(healthy >= TOP_K, "seed {seed}: only {healthy} healthy");

    let (report, manager) = run_once(&plan);
    assert_eq!(report.tasks_submitted, NUM_TASKS);
    assert_eq!(report.abandonments, 0, "seed {seed}: {report:?}");
    assert_eq!(report.answers_collected, TOP_K * NUM_TASKS);
    // No-show and straggler assignments all expire; each disconnector
    // expires exactly its one delivered dispatch (later assignments to it
    // fail delivery instead of expiring).
    let dropped = plan.workers_with(worker_ids(), FaultKind::Disconnect);
    let expected_expired = assignments_to(&manager, &plan, FaultKind::NoShow)
        + assignments_to(&manager, &plan, FaultKind::Straggler)
        + dropped.len();
    assert_eq!(report.expired_assignments, expected_expired, "seed {seed}");
    assert_eq!(
        report.garbage_answers,
        assignments_to(&manager, &plan, FaultKind::Garbage),
        "seed {seed}"
    );
    assert!(
        report.reassignments >= report.expired_assignments + report.garbage_answers,
        "every expiry and burned garbage answer is replaced: {report:?}"
    );

    let (again, _) = run_once(&plan);
    assert_reports_identical_modulo_late(report, again);
}

/// A selection backend whose refit can be forced to fail mid-stream.
struct FlakyBackend {
    inner: VsmBackend,
    fail: Arc<std::sync::atomic::AtomicBool>,
}

impl crowd_select::SelectorBackend for FlakyBackend {
    fn name(&self) -> &'static str {
        "flaky-vsm"
    }
    fn fit(
        &self,
        db: &CrowdDb,
        opts: &crowd_select::FitOptions,
    ) -> Result<crowd_select::FitOutcome, crowd_select::SelectError> {
        if self.fail.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(crowd_select::SelectError::Fit {
                backend: "flaky-vsm".to_string(),
                message: "injected fit failure".into(),
            });
        }
        self.inner.fit(db, opts)
    }
}

/// Graceful degradation end-to-end: a refit failure mid-run must not
/// stop task processing — the manager keeps serving the last-good
/// selector and the run's report carries the degraded-epoch count.
#[test]
fn degraded_manager_keeps_pipeline_running() {
    let plan = FaultPlan::new(fault_seed()); // all healthy
    let fail = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let pipeline = Pipeline::start_with_behavior(
        crowd_db(),
        fault_config(),
        behavior_for(&plan),
        Box::new(FlakyBackend {
            inner: VsmBackend,
            fail: Arc::clone(&fail),
        }),
    )
    .unwrap();
    let score_fn: Box<ScoreFn> = Box::new(|_, _, _| 2.5);
    let texts = task_texts();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();

    let before = pipeline.run(&refs[..2], &*score_fn);
    assert_eq!(before.tasks_submitted, 2);
    assert_eq!(before.degraded_epochs, 0);

    // The backend starts failing: an explicit refit attempt errors, the
    // manager records the degradation — and keeps selecting.
    fail.store(true, std::sync::atomic::Ordering::Relaxed);
    assert!(pipeline.manager().train().is_err());
    assert!(pipeline.manager().is_degraded());

    let after = pipeline.run(&refs[2..], &*score_fn);
    assert_eq!(after.tasks_submitted, NUM_TASKS - 2);
    assert_eq!(after.abandonments, 0, "{after:?}");
    assert_eq!(after.answers_collected, TOP_K * (NUM_TASKS - 2));
    assert_eq!(after.degraded_epochs, 1, "the report surfaces degradation");

    // Recovery clears the degraded flag but keeps the history.
    fail.store(false, std::sync::atomic::Ordering::Relaxed);
    pipeline.manager().train().unwrap();
    assert!(!pipeline.manager().is_degraded());
    assert_eq!(pipeline.manager().degraded_epochs(), 1);
    pipeline.shutdown();
}
