//! The platform is backend-agnostic: the full pipeline (manager +
//! dispatcher + worker threads + collector) runs unchanged over a non-TDPM
//! selection backend.

use crowd_baselines::{standard_registry, VsmBackend};
use crowd_platform::pipeline::AnswerFn;
use crowd_platform::{Pipeline, PipelineConfig};
use crowd_store::{CrowdDb, WorkerId};
use std::sync::Arc;

fn specialist_db() -> (CrowdDb, WorkerId, WorkerId) {
    let mut db = CrowdDb::new();
    let dba = db.add_worker("dba");
    let stat = db.add_worker("stat");
    for i in 0..8 {
        let (text, who) = if i % 2 == 0 {
            ("btree page split index buffer disk", dba)
        } else {
            ("gaussian prior posterior likelihood variance", stat)
        };
        let t = db.add_task(text);
        db.assign(who, t).unwrap();
        db.record_feedback(who, t, 3.0).unwrap();
    }
    (db, dba, stat)
}

#[test]
fn pipeline_serves_vsm_end_to_end() {
    let (db, dba, stat) = specialist_db();
    let answer_fn: Arc<AnswerFn> = Arc::new(|w, d| format!("answer to {} from {w}", d.task));
    let pipeline = Pipeline::start_with_backend(
        db,
        PipelineConfig {
            top_k: 1,
            ..PipelineConfig::default()
        },
        answer_fn,
        Box::new(VsmBackend),
    )
    .unwrap();
    assert_eq!(pipeline.manager().backend_name(), "vsm");

    let tasks = vec![
        "btree page buffer question",
        "gaussian variance question",
        "btree index split question",
    ];
    let report = pipeline.run(&tasks, &|_, _, _| 1.0);
    assert_eq!(report.tasks_submitted, 3);
    assert_eq!(report.dispatches_delivered, 3);
    assert_eq!(report.answers_collected, 3);
    assert_eq!(report.feedback_applied, 3);
    assert_eq!(report.errors, 0);

    let manager = pipeline.shutdown();
    let db = manager.db().read();
    let n = db.num_tasks();
    // VSM routes by vocabulary overlap: db questions to the dba, the stats
    // question to the statistician.
    let btree_task = crowd_store::TaskId((n - 3) as u32);
    let stats_task = crowd_store::TaskId((n - 2) as u32);
    assert!(db.is_assigned(dba, btree_task));
    assert!(db.is_assigned(stat, stats_task));
}

#[test]
fn any_registry_backend_can_drive_the_manager() {
    // Every lazily-fittable backend in the standard registry works as the
    // platform's selection engine — the manager only sees `dyn CrowdSelector`.
    use crowd_platform::{CrowdManager, ManagerConfig};
    use crowd_store::SharedCrowdDb;

    for name in ["vsm", "drm", "tspm"] {
        let (db, dba, stat) = specialist_db();
        let registry = standard_registry();
        // Re-wrap the registry entry as an owned backend box.
        let backend: Box<dyn crowd_select::SelectorBackend> = match name {
            "vsm" => Box::new(VsmBackend),
            "drm" => Box::new(crowd_baselines::DrmBackend),
            _ => Box::new(crowd_baselines::TspmBackend),
        };
        assert!(registry.contains(name));
        let manager = CrowdManager::with_backend(
            SharedCrowdDb::new(db),
            ManagerConfig {
                top_k: 1,
                ..ManagerConfig::default()
            },
            backend,
        );
        manager.train().unwrap();
        manager.set_online(dba);
        manager.set_online(stat);
        let (_, selected) = manager.submit_task("btree page buffer index").unwrap();
        assert_eq!(selected[0].worker, dba, "{name} routes the db question");
    }
}
