#![warn(missing_docs)]

//! The task-driven crowd-selection system of Figure 1.
//!
//! The paper's architecture has four moving parts, reproduced here:
//!
//! - the **crowd databases** ([`crowd_store::SharedCrowdDb`]) holding
//!   tasks, assignments and feedback,
//! - the **crowd manager** ([`CrowdManager`]) running both data flows:
//!   the *red* path (batch latent-skill inference + incremental skill
//!   updates on new feedback) and the *blue* path (project an incoming
//!   task, pick the top-k online workers),
//! - the **task dispatcher** ([`TaskDispatcher`]) delivering assignments
//!   to workers over channels,
//! - the **answer collector** ([`AnswerCollector`]) receiving answers and
//!   routing feedback back into the database and the model.
//!
//! [`Pipeline`] wires everything together with simulated workers on real
//! threads, which is how the end-to-end examples and tests drive the
//! system.
//!
//! On top of the paper's happy path sits a fault-tolerant task lifecycle
//! ([`TaskLifecycle`]): per-assignment deadlines, automatic reassignment
//! to the next-best ranked standby under bounded retries with exponential
//! backoff, quorum completion (m-of-k answers), and graceful manager
//! degradation (a failed refit keeps serving the last-good snapshot).
//! See DESIGN.md §"Fault model" for the full policy.

pub mod collector;
pub mod dispatcher;
pub mod events;
pub mod lifecycle;
pub mod manager;
pub mod pipeline;

pub use collector::AnswerCollector;
pub use dispatcher::TaskDispatcher;
pub use events::{AnswerEvent, Dispatch, FeedbackEvent};
pub use lifecycle::{Directive, LifecycleCounters, LifecyclePolicy, TaskLifecycle, TaskState};
pub use manager::{CrowdManager, ManagerConfig, ManagerError, TaskSubmission};
pub use pipeline::{Pipeline, PipelineConfig, PipelineReport, WorkerReply};
