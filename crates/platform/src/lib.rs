#![warn(missing_docs)]

//! The task-driven crowd-selection system of Figure 1.
//!
//! The paper's architecture has four moving parts, reproduced here:
//!
//! - the **crowd databases** ([`crowd_store::SharedCrowdDb`]) holding
//!   tasks, assignments and feedback,
//! - the **crowd manager** ([`CrowdManager`]) running both data flows:
//!   the *red* path (batch latent-skill inference + incremental skill
//!   updates on new feedback) and the *blue* path (project an incoming
//!   task, pick the top-k online workers),
//! - the **task dispatcher** ([`TaskDispatcher`]) delivering assignments
//!   to workers over channels,
//! - the **answer collector** ([`AnswerCollector`]) receiving answers and
//!   routing feedback back into the database and the model.
//!
//! [`Pipeline`] wires everything together with simulated workers on real
//! threads, which is how the end-to-end examples and tests drive the
//! system.

pub mod collector;
pub mod dispatcher;
pub mod events;
pub mod manager;
pub mod pipeline;

pub use collector::AnswerCollector;
pub use dispatcher::TaskDispatcher;
pub use events::{AnswerEvent, Dispatch, FeedbackEvent};
pub use manager::{CrowdManager, ManagerConfig, ManagerError};
pub use pipeline::{Pipeline, PipelineConfig, PipelineReport};
