//! The answer collector: receives answers and routes feedback.

use crate::events::{AnswerEvent, FeedbackEvent};
use crate::manager::{CrowdManager, ManagerError};
use crossbeam::channel::{unbounded, Receiver, Sender};

/// Collects answers from workers and applies feedback to the manager.
///
/// The collector owns the receiving end of the answer channel ("the system
/// keeps collecting the answers returned by the selected workers",
/// Section 2). Feedback arrives on its own channel — on real platforms it
/// comes later, from askers/voters, not from the answer itself.
#[derive(Debug)]
pub struct AnswerCollector {
    answer_tx: Sender<AnswerEvent>,
    answer_rx: Receiver<AnswerEvent>,
    feedback_tx: Sender<FeedbackEvent>,
    feedback_rx: Receiver<FeedbackEvent>,
}

/// Totals from a drain pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Answers persisted.
    pub answers: usize,
    /// Feedback scores applied.
    pub feedback: usize,
    /// Events that failed (unknown pairs, model errors).
    pub errors: usize,
}

impl Default for AnswerCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl AnswerCollector {
    /// Creates a collector with fresh channels.
    pub fn new() -> Self {
        let (answer_tx, answer_rx) = unbounded();
        let (feedback_tx, feedback_rx) = unbounded();
        AnswerCollector {
            answer_tx,
            answer_rx,
            feedback_tx,
            feedback_rx,
        }
    }

    /// Sender handle workers use to submit answers.
    pub fn answer_sender(&self) -> Sender<AnswerEvent> {
        self.answer_tx.clone()
    }

    /// Sender handle askers/voters use to submit feedback.
    pub fn feedback_sender(&self) -> Sender<FeedbackEvent> {
        self.feedback_tx.clone()
    }

    /// Submits one feedback event, surfacing a closed channel as a
    /// [`ManagerError::ChannelClosed`] instead of panicking or silently
    /// dropping the event.
    pub fn send_feedback(&self, event: FeedbackEvent) -> Result<(), ManagerError> {
        self.feedback_tx
            .send(event)
            .map_err(|_| ManagerError::ChannelClosed("feedback"))
    }

    /// Pops one queued answer, if any — the per-event path a lifecycle-
    /// driven pipeline uses to attribute each answer to its assignment
    /// before deciding quorum/reassignment.
    pub fn try_recv_answer(&self) -> Option<AnswerEvent> {
        self.answer_rx.try_recv().ok()
    }

    /// Drains only the feedback queue into the manager (answers stay
    /// queued). Used when answers are consumed per-event via
    /// [`AnswerCollector::try_recv_answer`].
    pub fn drain_feedback_into(&self, manager: &CrowdManager) -> DrainStats {
        let mut stats = DrainStats::default();
        while let Ok(fb) = self.feedback_rx.try_recv() {
            match manager.record_feedback(fb.worker, fb.task, fb.score) {
                Ok(()) => stats.feedback += 1,
                Err(_) => stats.errors += 1,
            }
        }
        stats
    }

    /// Drains every queued answer and feedback event into the manager.
    ///
    /// Returns counts; individual event failures are tallied, not fatal —
    /// a malformed event must not wedge the pipeline.
    pub fn drain_into(&self, manager: &CrowdManager) -> DrainStats {
        let mut stats = DrainStats::default();
        while let Ok(answer) = self.answer_rx.try_recv() {
            match manager.record_answer(answer.worker, answer.task, &answer.text) {
                Ok(()) => stats.answers += 1,
                Err(ManagerError::Store(_)) => stats.errors += 1,
                Err(_) => stats.errors += 1,
            }
        }
        while let Ok(fb) = self.feedback_rx.try_recv() {
            match manager.record_feedback(fb.worker, fb.task, fb.score) {
                Ok(()) => stats.feedback += 1,
                Err(_) => stats.errors += 1,
            }
        }
        stats
    }

    /// Number of answers waiting in the queue.
    pub fn pending_answers(&self) -> usize {
        self.answer_rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ManagerConfig;
    use crowd_core::TdpmConfig;
    use crowd_store::{CrowdDb, SharedCrowdDb, TaskId, WorkerId};

    fn trained_manager() -> (CrowdManager, WorkerId, TaskId) {
        let mut db = CrowdDb::new();
        let w = db.add_worker("w");
        let t = db.add_task("btree page split question");
        db.assign(w, t).unwrap();
        db.record_feedback(w, t, 2.0).unwrap();
        let manager = CrowdManager::new(
            SharedCrowdDb::new(db),
            ManagerConfig {
                top_k: 1,
                tdpm: TdpmConfig {
                    num_categories: 2,
                    max_em_iters: 5,
                    ..TdpmConfig::default()
                },
                retrain_every: None,
            },
        );
        manager.train().unwrap();
        manager.set_online(w);
        (manager, w, t)
    }

    #[test]
    fn answers_and_feedback_flow_through() {
        let (manager, w, _) = trained_manager();
        let (task, _) = manager.submit_task("another btree question").unwrap();
        let collector = AnswerCollector::new();
        collector
            .answer_sender()
            .send(AnswerEvent {
                worker: w,
                task,
                text: "an answer".into(),
            })
            .unwrap();
        collector
            .feedback_sender()
            .send(FeedbackEvent {
                worker: w,
                task,
                score: 3.0,
            })
            .unwrap();
        assert_eq!(collector.pending_answers(), 1);
        let stats = collector.drain_into(&manager);
        assert_eq!(stats.answers, 1);
        assert_eq!(stats.feedback, 1);
        assert_eq!(stats.errors, 0);
        assert_eq!(manager.db().read().feedback(w, task), Some(3.0));
    }

    #[test]
    fn bad_events_count_as_errors() {
        let (manager, _, _) = trained_manager();
        let collector = AnswerCollector::new();
        // Answer for a pair that was never assigned.
        collector
            .answer_sender()
            .send(AnswerEvent {
                worker: WorkerId(77),
                task: TaskId(0),
                text: "ghost".into(),
            })
            .unwrap();
        collector
            .feedback_sender()
            .send(FeedbackEvent {
                worker: WorkerId(77),
                task: TaskId(0),
                score: 1.0,
            })
            .unwrap();
        let stats = collector.drain_into(&manager);
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.answers, 0);
    }

    #[test]
    fn drain_on_empty_channels_is_noop() {
        let (manager, _, _) = trained_manager();
        let collector = AnswerCollector::new();
        assert_eq!(collector.drain_into(&manager), DrainStats::default());
    }

    #[test]
    fn per_event_receive_and_feedback_only_drain() {
        let (manager, w, _) = trained_manager();
        let (task, _) = manager.submit_task("another btree question").unwrap();
        let collector = AnswerCollector::new();
        collector
            .send_feedback(FeedbackEvent {
                worker: w,
                task,
                score: 2.0,
            })
            .unwrap();
        collector
            .answer_sender()
            .send(AnswerEvent {
                worker: w,
                task,
                text: "an answer".into(),
            })
            .unwrap();
        // Feedback-only drain leaves the answer queued…
        let stats = collector.drain_feedback_into(&manager);
        assert_eq!(stats.feedback, 1);
        assert_eq!(stats.answers, 0);
        assert_eq!(collector.pending_answers(), 1);
        // …for the per-event path to consume.
        let ev = collector.try_recv_answer().unwrap();
        assert_eq!(ev.worker, w);
        assert!(collector.try_recv_answer().is_none());
    }
}
