//! Messages exchanged between the pipeline components.

use crowd_store::{TaskId, WorkerId};

/// A task handed to a worker by the dispatcher.
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatch {
    /// The assigned task.
    pub task: TaskId,
    /// Task text as shown to the worker.
    pub text: String,
}

/// An answer returned by a worker.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerEvent {
    /// The answering worker.
    pub worker: WorkerId,
    /// The answered task.
    pub task: TaskId,
    /// Answer text.
    pub text: String,
}

/// Feedback assigned to a completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackEvent {
    /// The scored worker.
    pub worker: WorkerId,
    /// The scored task.
    pub task: TaskId,
    /// The feedback score `s_ij`.
    pub score: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_cloneable_and_comparable() {
        let d = Dispatch {
            task: TaskId(1),
            text: "t".into(),
        };
        assert_eq!(d.clone(), d);
        let a = AnswerEvent {
            worker: WorkerId(0),
            task: TaskId(1),
            text: "a".into(),
        };
        assert_eq!(a.clone(), a);
        let f = FeedbackEvent {
            worker: WorkerId(0),
            task: TaskId(1),
            score: 2.0,
        };
        assert_eq!(f.clone(), f);
    }
}
