//! The crowd manager: latent-skill inference plus online crowd-selection.

use crowd_core::{CoreError, TdpmBackend, TdpmConfig, TdpmModel};
use crowd_select::{
    BatchQuery, FitDiagnostics, FitOptions, FittedSelector, RankedWorker, SelectError,
    SelectorBackend,
};
use crowd_store::{OnlineRegistry, SharedCrowdDb, StoreError, TaskId, WorkerId};
use crowd_text::{tokenize_filtered, BagOfWords};
use parking_lot::{Mutex, RwLock};
use std::fmt;

/// Crowd-manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Workers selected per incoming task (Eq. 1's `k`).
    pub top_k: usize,
    /// Model hyper-parameters for (re)training with the default TDPM
    /// backend (ignored by custom backends passed to
    /// [`CrowdManager::with_backend`]).
    pub tdpm: TdpmConfig,
    /// Automatic batch retraining: after this many feedback events since the
    /// last `train()`, the next [`CrowdManager::record_feedback`] triggers a
    /// full refit (the paper's red data flow). `None` disables auto-retrain
    /// (incremental updates only).
    pub retrain_every: Option<usize>,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            top_k: 2,
            tdpm: TdpmConfig::default(),
            retrain_every: None,
        }
    }
}

/// Errors surfaced by the crowd manager.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagerError {
    /// No model has been trained yet (call [`CrowdManager::train`] first).
    NotTrained,
    /// Nobody is online to receive the task.
    NoWorkersOnline,
    /// Underlying store failure.
    Store(StoreError),
    /// Underlying model failure.
    Model(String),
    /// An event channel on the platform path closed (receiver dropped);
    /// the named endpoint can no longer accept events. Surfaced as an
    /// error so the pipeline degrades and counts it instead of panicking.
    ChannelClosed(&'static str),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::NotTrained => write!(f, "crowd model not trained yet"),
            ManagerError::NoWorkersOnline => write!(f, "no workers online"),
            ManagerError::Store(e) => write!(f, "store error: {e}"),
            ManagerError::Model(e) => write!(f, "model error: {e}"),
            ManagerError::ChannelClosed(what) => write!(f, "{what} channel closed"),
        }
    }
}

impl std::error::Error for ManagerError {}

impl From<StoreError> for ManagerError {
    fn from(e: StoreError) -> Self {
        ManagerError::Store(e)
    }
}

impl From<CoreError> for ManagerError {
    fn from(e: CoreError) -> Self {
        ManagerError::Model(e.to_string())
    }
}

impl From<SelectError> for ManagerError {
    fn from(e: SelectError) -> Self {
        ManagerError::Model(e.to_string())
    }
}

/// The core component of the system (paper Section 2): infers latent skills
/// from resolved tasks (red data flow) and answers selection queries for
/// incoming tasks (blue data flow).
///
/// The manager is generic over the selection algorithm: it holds one
/// [`SelectorBackend`] (TDPM by default, any backend via
/// [`CrowdManager::with_backend`]) and serves queries from the
/// [`FittedSelector`] snapshot the backend produced, touching the selector
/// only through the `dyn CrowdSelector` interface — ranking via
/// [`crowd_select::CrowdSelector::select`], incremental maintenance via
/// [`crowd_select::CrowdSelector::observe_feedback`].
///
/// Thread-safe: selection queries take read locks; training and feedback
/// take write locks.
pub struct CrowdManager {
    db: SharedCrowdDb,
    online: Mutex<OnlineRegistry>,
    backend: Box<dyn SelectorBackend>,
    fitted: RwLock<Option<FittedSelector>>,
    config: ManagerConfig,
    feedback_since_train: std::sync::atomic::AtomicUsize,
    epoch: std::sync::atomic::AtomicU64,
    degraded: std::sync::atomic::AtomicBool,
    degraded_epochs: std::sync::atomic::AtomicU64,
    last_fit_error: Mutex<Option<String>>,
}

impl std::fmt::Debug for CrowdManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrowdManager")
            .field("backend", &self.backend.name())
            .field("config", &self.config)
            .field(
                "epoch",
                &self.epoch.load(std::sync::atomic::Ordering::Relaxed),
            )
            .field(
                "degraded",
                &self.degraded.load(std::sync::atomic::Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

/// What [`CrowdManager::submit_task_ranked`] returns: the stored task, the
/// assigned top-k, and the rest of the online ranking — the reassignment
/// pool a fault-tolerant pipeline falls back to when an assignee expires.
#[derive(Debug, Clone)]
pub struct TaskSubmission {
    /// The stored task.
    pub task: TaskId,
    /// Top-k workers, assigned in the database.
    pub selected: Vec<RankedWorker>,
    /// Every remaining online candidate, best first — *not* assigned.
    pub standbys: Vec<RankedWorker>,
}

impl CrowdManager {
    /// Creates a manager over a shared crowd database, selecting with the
    /// paper's TDPM model (configured by `config.tdpm`).
    pub fn new(db: SharedCrowdDb, config: ManagerConfig) -> Self {
        let backend = Box::new(TdpmBackend::with_config(config.tdpm.clone()));
        CrowdManager::with_backend(db, config, backend)
    }

    /// Creates a manager that trains and serves an arbitrary selection
    /// backend (e.g. `crowd_baselines::VsmBackend`).
    pub fn with_backend(
        db: SharedCrowdDb,
        config: ManagerConfig,
        backend: Box<dyn SelectorBackend>,
    ) -> Self {
        CrowdManager {
            db,
            online: Mutex::new(OnlineRegistry::new()),
            backend,
            fitted: RwLock::new(None),
            config,
            feedback_since_train: std::sync::atomic::AtomicUsize::new(0),
            epoch: std::sync::atomic::AtomicU64::new(0),
            degraded: std::sync::atomic::AtomicBool::new(false),
            degraded_epochs: std::sync::atomic::AtomicU64::new(0),
            last_fit_error: Mutex::new(None),
        }
    }

    /// Feedback events recorded since the last full training run.
    pub fn feedback_since_train(&self) -> usize {
        self.feedback_since_train
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The shared database handle.
    pub fn db(&self) -> &SharedCrowdDb {
        &self.db
    }

    /// Canonical name of the selection backend this manager serves.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Marks a worker online (candidate for selection).
    pub fn set_online(&self, worker: WorkerId) {
        self.online.lock().set_online(worker);
        // Workers who joined after training start at the prior.
        if let Some(fitted) = self.fitted.write().as_mut() {
            fitted.selector_mut().add_worker(worker);
        }
    }

    /// Marks a worker offline.
    pub fn set_offline(&self, worker: WorkerId) {
        self.online.lock().set_offline(worker);
    }

    /// Number of online workers.
    pub fn num_online(&self) -> usize {
        self.online.lock().len()
    }

    /// Red path: batch skill inference over all resolved tasks (Algorithm 2
    /// for TDPM; whatever fit the configured backend implements otherwise).
    /// Replaces the current serving snapshot.
    ///
    /// Graceful degradation: when the refit *fails* and a previous snapshot
    /// is serving, that last-good [`FittedSelector`] stays in place and the
    /// manager records the degraded state ([`CrowdManager::is_degraded`],
    /// [`CrowdManager::degraded_epochs`], [`CrowdManager::last_fit_error`])
    /// instead of dropping selection capability. The error is still
    /// returned so explicit `train()` callers can react.
    pub fn train(&self) -> Result<FitDiagnostics, ManagerError> {
        let outcome = {
            let db = self.db.read();
            self.backend.fit(&db, &FitOptions::default())
        };
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(e) => {
                if self.is_trained() {
                    self.degraded
                        .store(true, std::sync::atomic::Ordering::Relaxed);
                    self.degraded_epochs
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    *self.last_fit_error.lock() = Some(e.to_string());
                }
                return Err(e.into());
            }
        };
        let epoch = self
            .epoch
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        let fitted = FittedSelector::new(self.backend.name(), outcome).with_epoch(epoch);
        let diagnostics = fitted.diagnostics().clone();
        *self.fitted.write() = Some(fitted);
        self.feedback_since_train
            .store(0, std::sync::atomic::Ordering::Relaxed);
        self.degraded
            .store(false, std::sync::atomic::Ordering::Relaxed);
        *self.last_fit_error.lock() = None;
        Ok(diagnostics)
    }

    /// `true` while the manager serves a stale snapshot because the most
    /// recent refit failed.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// How many refits have failed while a last-good snapshot kept serving.
    pub fn degraded_epochs(&self) -> u64 {
        self.degraded_epochs
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The error message from the most recent failed refit, if the manager
    /// is currently degraded.
    pub fn last_fit_error(&self) -> Option<String> {
        self.last_fit_error.lock().clone()
    }

    /// `true` once a fitted selector is serving.
    pub fn is_trained(&self) -> bool {
        self.fitted.read().is_some()
    }

    /// Blue path: accepts a new task, stores it, and returns the top-k
    /// *online* workers (Eq. 1) ranked by the serving selector.
    pub fn submit_task(&self, text: &str) -> Result<(TaskId, Vec<RankedWorker>), ManagerError> {
        let submission = self.submit_task_ranked(text)?;
        Ok((submission.task, submission.selected))
    }

    /// Like [`CrowdManager::submit_task`], but also returns the ranked
    /// candidates *beyond* top-k as standbys. A fault-tolerant pipeline
    /// reassigns an expired assignment to the next-best standby instead of
    /// abandoning the task.
    pub fn submit_task_ranked(&self, text: &str) -> Result<TaskSubmission, ManagerError> {
        let fitted_guard = self.fitted.read();
        let fitted = fitted_guard.as_ref().ok_or(ManagerError::NotTrained)?;

        let (task, bow) = {
            let mut db = self.db.write();
            let tokens = tokenize_filtered(text);
            let bow = BagOfWords::from_tokens(&tokens, db.vocab_mut());
            let task = db.add_task_raw(text.to_owned(), bow.clone());
            (task, bow)
        };

        let candidates: Vec<WorkerId> = self.online.lock().online_workers().collect();
        if candidates.is_empty() {
            return Err(ManagerError::NoWorkersOnline);
        }
        // One full ranking pass; the head is assigned, the tail is the
        // reassignment pool.
        let mut ranking = fitted
            .selector()
            .select(&bow, &candidates, candidates.len());
        let standbys = ranking.split_off(self.config.top_k.min(ranking.len()));
        let selected = ranking;

        {
            let mut db = self.db.write();
            for r in &selected {
                db.assign(r.worker, task)?;
            }
        }
        Ok(TaskSubmission {
            task,
            selected,
            standbys,
        })
    }

    /// Batched blue path: accepts several tasks at once under a *single*
    /// read lock on the serving snapshot, ranking them through
    /// [`FittedSelector::select_batch`] so the candidate pool is resolved
    /// once for the whole batch (the dense batch kernel for TDPM).
    ///
    /// Rankings are bit-identical to calling
    /// [`CrowdManager::submit_task_ranked`] once per text; the difference is
    /// purely amortization. All tasks are stored before the online check,
    /// mirroring the single-task path.
    pub fn submit_tasks_ranked(&self, texts: &[&str]) -> Result<Vec<TaskSubmission>, ManagerError> {
        let fitted_guard = self.fitted.read();
        let fitted = fitted_guard.as_ref().ok_or(ManagerError::NotTrained)?;

        let tasks: Vec<(TaskId, BagOfWords)> = {
            let mut db = self.db.write();
            texts
                .iter()
                .map(|&text| {
                    let tokens = tokenize_filtered(text);
                    let bow = BagOfWords::from_tokens(&tokens, db.vocab_mut());
                    let task = db.add_task_raw(text.to_owned(), bow.clone());
                    (task, bow)
                })
                .collect()
        };

        let candidates: Vec<WorkerId> = self.online.lock().online_workers().collect();
        if candidates.is_empty() {
            return Err(ManagerError::NoWorkersOnline);
        }
        // One shared candidate slice → one pool resolution for the batch.
        let queries: Vec<BatchQuery<'_>> = tasks
            .iter()
            .map(|(_, bow)| BatchQuery {
                bow,
                candidates: &candidates,
                task: None,
            })
            .collect();
        let rankings = fitted.select_batch(&queries, candidates.len());

        let mut out = Vec::with_capacity(tasks.len());
        let mut db = self.db.write();
        for ((task, _), mut ranking) in tasks.into_iter().zip(rankings) {
            let standbys = ranking.split_off(self.config.top_k.min(ranking.len()));
            let selected = ranking;
            for r in &selected {
                db.assign(r.worker, task)?;
            }
            out.push(TaskSubmission {
                task,
                selected,
                standbys,
            });
        }
        Ok(out)
    }

    /// Assigns `worker` to `task` (the reassignment path). Idempotent:
    /// re-assigning an already-assigned pair is not an error.
    pub fn assign(&self, worker: WorkerId, task: TaskId) -> Result<(), ManagerError> {
        match self.db.write().assign(worker, task) {
            Ok(()) | Err(StoreError::AlreadyAssigned(_, _)) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Stores a worker's answer text for a dispatched task.
    pub fn record_answer(
        &self,
        worker: WorkerId,
        task: TaskId,
        text: &str,
    ) -> Result<(), ManagerError> {
        self.db.write().record_answer(worker, task, text)?;
        Ok(())
    }

    /// Records feedback: persists the score and lets the serving selector
    /// fold it into the worker's skill estimate (Section 4.2's "after
    /// solving the task, the skills of workers involved can be updated";
    /// backends without incremental maintenance ignore it).
    pub fn record_feedback(
        &self,
        worker: WorkerId,
        task: TaskId,
        score: f64,
    ) -> Result<(), ManagerError> {
        self.db.write().record_feedback(worker, task, score)?;
        let bow = self.db.read().task(task)?.bow.clone();
        if let Some(fitted) = self.fitted.write().as_mut() {
            fitted
                .selector_mut()
                .observe_feedback(worker, task, &bow, score)?;
        }
        let n = self
            .feedback_since_train
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        if let Some(every) = self.config.retrain_every {
            if n >= every && self.is_trained() {
                // A failed background refit must not fail the feedback that
                // triggered it: train() already recorded the degraded state
                // and the last-good snapshot keeps serving.
                let _ = self.train();
            }
        }
        Ok(())
    }

    /// Read access to the serving snapshot (backend name, epoch,
    /// diagnostics, the selector itself).
    pub fn with_fitted<T>(&self, f: impl FnOnce(&FittedSelector) -> T) -> Result<T, ManagerError> {
        self.fitted
            .read()
            .as_ref()
            .map(f)
            .ok_or(ManagerError::NotTrained)
    }

    /// Read access to the concrete TDPM model, when this manager serves the
    /// TDPM backend (e.g. to inspect skills). Fails with
    /// [`ManagerError::NotTrained`] when untrained *or* when the serving
    /// selector is not a TDPM model.
    pub fn with_model<T>(&self, f: impl FnOnce(&TdpmModel) -> T) -> Result<T, ManagerError> {
        self.fitted
            .read()
            .as_ref()
            .and_then(|fitted| fitted.downcast_ref::<TdpmModel>().map(f))
            .ok_or(ManagerError::NotTrained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_baselines::VsmBackend;
    use crowd_store::CrowdDb;

    /// A db with two clearly separated specialists.
    fn seeded_db() -> (CrowdDb, WorkerId, WorkerId) {
        let mut db = CrowdDb::new();
        let dba = db.add_worker("dba");
        let stat = db.add_worker("stat");
        for i in 0..8 {
            let (text, good, bad) = if i % 2 == 0 {
                ("btree page split index buffer disk", dba, stat)
            } else {
                ("gaussian prior posterior likelihood variance", stat, dba)
            };
            let t = db.add_task(text);
            db.assign(good, t).unwrap();
            db.assign(bad, t).unwrap();
            db.record_feedback(good, t, 4.0).unwrap();
            db.record_feedback(bad, t, 0.5).unwrap();
        }
        (db, dba, stat)
    }

    fn seeded_manager(k: usize) -> (CrowdManager, WorkerId, WorkerId) {
        let (db, dba, stat) = seeded_db();
        let cfg = ManagerConfig {
            top_k: 1,
            tdpm: TdpmConfig {
                num_categories: k,
                max_em_iters: 20,
                seed: 7,
                ..TdpmConfig::default()
            },
            retrain_every: None,
        };
        let manager = CrowdManager::new(SharedCrowdDb::new(db), cfg);
        (manager, dba, stat)
    }

    #[test]
    fn untrained_manager_rejects_tasks() {
        let (manager, dba, _) = seeded_manager(2);
        manager.set_online(dba);
        assert_eq!(
            manager.submit_task("anything").unwrap_err(),
            ManagerError::NotTrained
        );
    }

    #[test]
    fn no_online_workers_is_an_error() {
        let (manager, _, _) = seeded_manager(2);
        manager.train().unwrap();
        assert_eq!(
            manager.submit_task("btree index").unwrap_err(),
            ManagerError::NoWorkersOnline
        );
    }

    #[test]
    fn selection_routes_to_online_specialist() {
        let (manager, dba, stat) = seeded_manager(2);
        let report = manager.train().unwrap();
        assert!(report.iterations >= 1);
        assert!(manager.is_trained());
        assert_eq!(manager.backend_name(), "tdpm");
        manager.set_online(dba);
        manager.set_online(stat);
        assert_eq!(manager.num_online(), 2);

        let (task, selected) = manager.submit_task("btree page buffer").unwrap();
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].worker, dba);
        // The selected worker was assigned in the database.
        assert!(manager.db().read().is_assigned(dba, task));
    }

    #[test]
    fn offline_specialist_is_skipped() {
        let (manager, _dba, stat) = seeded_manager(2);
        manager.train().unwrap();
        manager.set_online(stat); // the DBA is offline
        let (_, selected) = manager.submit_task("btree page buffer").unwrap();
        assert_eq!(selected[0].worker, stat, "only online workers qualify");
    }

    #[test]
    fn feedback_round_trip_updates_model() {
        let (manager, dba, stat) = seeded_manager(2);
        manager.train().unwrap();
        manager.set_online(dba);
        manager.set_online(stat);

        let newbie = manager.db().write().add_worker("newbie");
        manager.set_online(newbie);

        // Newbie crushes several statistics questions.
        for _ in 0..6 {
            let (task, _) = manager
                .submit_task("gaussian posterior variance prior likelihood")
                .unwrap();
            // Even if not selected, the newbie answers (self-assign path):
            let mut db = manager.db().write();
            if !db.is_assigned(newbie, task) {
                db.assign(newbie, task).unwrap();
            }
            drop(db);
            manager
                .record_answer(newbie, task, "an excellent answer")
                .unwrap();
            manager.record_feedback(newbie, task, 6.0).unwrap();
        }
        // The newbie's skill on the stats direction should now be strong
        // enough to win a stats task.
        let (_, selected) = manager
            .submit_task("prior posterior gaussian variance")
            .unwrap();
        assert_eq!(selected[0].worker, newbie, "selected: {selected:?}");
    }

    #[test]
    fn auto_retrain_fires_after_threshold() {
        let (manager, dba, stat) = seeded_manager(2);
        // Rebuild with a retrain policy of 3 feedback events.
        let manager = {
            let db = manager.db().clone();
            CrowdManager::new(
                db,
                ManagerConfig {
                    top_k: 1,
                    tdpm: TdpmConfig {
                        num_categories: 2,
                        max_em_iters: 5,
                        seed: 7,
                        ..TdpmConfig::default()
                    },
                    retrain_every: Some(3),
                },
            )
        };
        manager.train().unwrap();
        manager.set_online(dba);
        manager.set_online(stat);
        assert_eq!(manager.feedback_since_train(), 0);

        for i in 0..5 {
            let (task, selected) = manager.submit_task("btree page split").unwrap();
            manager
                .record_feedback(selected[0].worker, task, 2.0)
                .unwrap();
            // Counter resets when the threshold (3) is crossed.
            let n = manager.feedback_since_train();
            assert!(n < 3, "after event {i}: counter {n} must stay below 3");
        }
    }

    #[test]
    fn answers_are_persisted() {
        let (manager, dba, stat) = seeded_manager(2);
        manager.train().unwrap();
        manager.set_online(dba);
        manager.set_online(stat);
        let (task, selected) = manager.submit_task("btree split page").unwrap();
        let w = selected[0].worker;
        manager
            .record_answer(w, task, "split at the median key")
            .unwrap();
        assert!(manager.db().read().answer(w, task).is_some());
    }

    #[test]
    fn epochs_count_trainings() {
        let (manager, _, _) = seeded_manager(2);
        manager.train().unwrap();
        manager.train().unwrap();
        let epoch = manager.with_fitted(|f| f.epoch()).unwrap();
        assert_eq!(epoch, 2);
    }

    /// A backend whose fit can be forced to fail — the refit-failure
    /// half of the graceful-degradation contract.
    struct FlakyBackend {
        inner: VsmBackend,
        fail: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl crowd_select::SelectorBackend for FlakyBackend {
        fn name(&self) -> &'static str {
            "flaky-vsm"
        }
        fn fit(
            &self,
            db: &crowd_store::CrowdDb,
            opts: &crowd_select::FitOptions,
        ) -> std::result::Result<crowd_select::FitOutcome, SelectError> {
            if self.fail.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(SelectError::Fit {
                    backend: "flaky-vsm".to_string(),
                    message: "injected fit failure".into(),
                });
            }
            self.inner.fit(db, opts)
        }
    }

    #[test]
    fn failed_refit_keeps_serving_the_last_good_snapshot() {
        let (db, dba, stat) = seeded_db();
        let fail = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let manager = CrowdManager::with_backend(
            SharedCrowdDb::new(db),
            ManagerConfig {
                top_k: 1,
                ..ManagerConfig::default()
            },
            Box::new(FlakyBackend {
                inner: VsmBackend,
                fail: std::sync::Arc::clone(&fail),
            }),
        );
        manager.train().unwrap();
        manager.set_online(dba);
        manager.set_online(stat);
        assert!(!manager.is_degraded());
        let epoch_before = manager.with_fitted(|f| f.epoch()).unwrap();

        // The refit fails — but selection must keep working off the
        // last-good snapshot, with the degradation recorded.
        fail.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(manager.train().is_err());
        assert!(manager.is_degraded());
        assert_eq!(manager.degraded_epochs(), 1);
        assert!(manager
            .last_fit_error()
            .unwrap()
            .contains("injected fit failure"));
        assert_eq!(
            manager.with_fitted(|f| f.epoch()).unwrap(),
            epoch_before,
            "snapshot unchanged"
        );
        let (_, selected) = manager.submit_task("btree page buffer index").unwrap();
        assert_eq!(selected[0].worker, dba, "stale snapshot still selects");

        // Recovery: the next successful refit clears the degraded state.
        fail.store(false, std::sync::atomic::Ordering::Relaxed);
        manager.train().unwrap();
        assert!(!manager.is_degraded());
        assert_eq!(manager.last_fit_error(), None);
        assert_eq!(manager.degraded_epochs(), 1, "history is kept");
    }

    #[test]
    fn failed_auto_retrain_degrades_instead_of_failing_feedback() {
        let (db, dba, stat) = seeded_db();
        let fail = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let manager = CrowdManager::with_backend(
            SharedCrowdDb::new(db),
            ManagerConfig {
                top_k: 1,
                retrain_every: Some(2),
                ..ManagerConfig::default()
            },
            Box::new(FlakyBackend {
                inner: VsmBackend,
                fail: std::sync::Arc::clone(&fail),
            }),
        );
        manager.train().unwrap();
        manager.set_online(dba);
        manager.set_online(stat);

        fail.store(true, std::sync::atomic::Ordering::Relaxed);
        for _ in 0..4 {
            let (task, selected) = manager.submit_task("btree page split").unwrap();
            // The feedback that trips the auto-retrain threshold must
            // still succeed even though the refit behind it fails.
            manager
                .record_feedback(selected[0].worker, task, 2.0)
                .unwrap();
        }
        assert!(manager.is_degraded());
        assert!(manager.degraded_epochs() >= 1);
    }

    #[test]
    fn ranked_submission_exposes_the_standby_pool() {
        let (db, _, _) = seeded_db();
        let mut db = db;
        let extra: Vec<WorkerId> = (0..3).map(|i| db.add_worker(format!("extra{i}"))).collect();
        let manager = CrowdManager::with_backend(
            SharedCrowdDb::new(db),
            ManagerConfig {
                top_k: 2,
                ..ManagerConfig::default()
            },
            Box::new(VsmBackend),
        );
        manager.train().unwrap();
        for w in manager.db().read().worker_ids().collect::<Vec<_>>() {
            manager.set_online(w);
        }
        let sub = manager
            .submit_task_ranked("btree page buffer index")
            .unwrap();
        assert_eq!(sub.selected.len(), 2);
        assert_eq!(sub.standbys.len(), 3, "5 online − top 2 = 3 standbys");
        // Standbys rank strictly below every selected worker and are NOT
        // assigned yet.
        let db = manager.db().read();
        for s in &sub.standbys {
            assert!(!db.is_assigned(s.worker, sub.task));
            assert!(sub.selected.iter().all(|r| r.score >= s.score));
        }
        drop(db);
        // The reassignment path assigns them on demand, idempotently.
        manager.assign(extra[0], sub.task).unwrap();
        manager.assign(extra[0], sub.task).unwrap();
        assert!(manager.db().read().is_assigned(extra[0], sub.task));
    }

    #[test]
    fn batched_submission_matches_sequential_rankings() {
        // Two managers over identical databases and (frozen) VSM fits: one
        // submits a burst, the other submits one by one. Selection must be
        // bit-identical — batching is amortization, not a policy change.
        let texts = [
            "btree page split question",
            "gaussian prior variance question",
            "btree index buffer question",
        ];
        let build = || {
            let (db, dba, stat) = seeded_db();
            let m = CrowdManager::with_backend(
                SharedCrowdDb::new(db),
                ManagerConfig {
                    top_k: 1,
                    ..ManagerConfig::default()
                },
                Box::new(VsmBackend),
            );
            m.train().unwrap();
            m.set_online(dba);
            m.set_online(stat);
            m
        };
        let batched = build().submit_tasks_ranked(&texts).unwrap();
        let sequential: Vec<TaskSubmission> = {
            let m = build();
            texts
                .iter()
                .map(|t| m.submit_task_ranked(t).unwrap())
                .collect()
        };
        assert_eq!(batched.len(), sequential.len());
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(b.task, s.task);
            let pairs = [(&b.selected, &s.selected), (&b.standbys, &s.standbys)];
            for (bw, sw) in pairs {
                assert_eq!(bw.len(), sw.len());
                for (x, y) in bw.iter().zip(sw.iter()) {
                    assert_eq!(x.worker, y.worker);
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn batched_submission_assigns_and_checks_online() {
        let (manager, dba, stat) = seeded_manager(2);
        assert_eq!(
            manager.submit_tasks_ranked(&["anything"]).unwrap_err(),
            ManagerError::NotTrained
        );
        manager.train().unwrap();
        assert_eq!(
            manager.submit_tasks_ranked(&["anything"]).unwrap_err(),
            ManagerError::NoWorkersOnline
        );
        manager.set_online(dba);
        manager.set_online(stat);
        let subs = manager
            .submit_tasks_ranked(&["btree page buffer", "gaussian prior variance"])
            .unwrap();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].selected[0].worker, dba);
        assert_eq!(subs[1].selected[0].worker, stat);
        let db = manager.db().read();
        for sub in &subs {
            for r in &sub.selected {
                assert!(db.is_assigned(r.worker, sub.task));
            }
            for s in &sub.standbys {
                assert!(!db.is_assigned(s.worker, sub.task));
            }
        }
    }

    #[test]
    fn manager_serves_a_non_tdpm_backend() {
        let (db, dba, stat) = seeded_db();
        let manager = CrowdManager::with_backend(
            SharedCrowdDb::new(db),
            ManagerConfig {
                top_k: 1,
                ..ManagerConfig::default()
            },
            Box::new(VsmBackend),
        );
        assert_eq!(manager.backend_name(), "vsm");
        let report = manager.train().unwrap();
        assert!(report.converged, "VSM fits in closed form");
        manager.set_online(dba);
        manager.set_online(stat);

        let (task, selected) = manager.submit_task("btree page buffer index").unwrap();
        assert_eq!(selected[0].worker, dba, "VSM routes the db question");
        assert!(manager.db().read().is_assigned(dba, task));
        // Feedback flows through the trait without error even though VSM has
        // no incremental update.
        manager.record_feedback(dba, task, 3.0).unwrap();
        // The concrete-model escape hatch correctly reports "not a TDPM".
        assert_eq!(
            manager.with_model(|_| ()).unwrap_err(),
            ManagerError::NotTrained
        );
        // But the snapshot interface still exposes the backend.
        assert_eq!(manager.with_fitted(|f| f.backend()).unwrap(), "vsm");
    }
}
