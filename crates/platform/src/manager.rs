//! The crowd manager: latent-skill inference plus online crowd-selection.

use crowd_core::selection::RankedWorker;
use crowd_core::{CoreError, FitReport, TaskProjection, TdpmConfig, TdpmModel, TdpmTrainer};
use crowd_store::{OnlineRegistry, SharedCrowdDb, StoreError, TaskId, WorkerId};
use crowd_text::{tokenize_filtered, BagOfWords};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;

/// Crowd-manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Workers selected per incoming task (Eq. 1's `k`).
    pub top_k: usize,
    /// Model hyper-parameters for (re)training.
    pub tdpm: TdpmConfig,
    /// Automatic batch retraining: after this many feedback events since the
    /// last `train()`, the next [`CrowdManager::record_feedback`] triggers a
    /// full refit (the paper's red data flow). `None` disables auto-retrain
    /// (incremental updates only).
    pub retrain_every: Option<usize>,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            top_k: 2,
            tdpm: TdpmConfig::default(),
            retrain_every: None,
        }
    }
}

/// Errors surfaced by the crowd manager.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagerError {
    /// No model has been trained yet (call [`CrowdManager::train`] first).
    NotTrained,
    /// Nobody is online to receive the task.
    NoWorkersOnline,
    /// Underlying store failure.
    Store(StoreError),
    /// Underlying model failure.
    Model(String),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::NotTrained => write!(f, "crowd model not trained yet"),
            ManagerError::NoWorkersOnline => write!(f, "no workers online"),
            ManagerError::Store(e) => write!(f, "store error: {e}"),
            ManagerError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for ManagerError {}

impl From<StoreError> for ManagerError {
    fn from(e: StoreError) -> Self {
        ManagerError::Store(e)
    }
}

impl From<CoreError> for ManagerError {
    fn from(e: CoreError) -> Self {
        ManagerError::Model(e.to_string())
    }
}

/// The core component of the system (paper Section 2): infers latent skills
/// from resolved tasks (red data flow) and answers selection queries for
/// incoming tasks (blue data flow).
///
/// Thread-safe: selection queries take read locks; training and feedback
/// take write locks.
pub struct CrowdManager {
    db: SharedCrowdDb,
    online: Mutex<OnlineRegistry>,
    model: RwLock<Option<TdpmModel>>,
    projections: Mutex<HashMap<TaskId, TaskProjection>>,
    config: ManagerConfig,
    feedback_since_train: std::sync::atomic::AtomicUsize,
}

impl CrowdManager {
    /// Creates a manager over a shared crowd database.
    pub fn new(db: SharedCrowdDb, config: ManagerConfig) -> Self {
        CrowdManager {
            db,
            online: Mutex::new(OnlineRegistry::new()),
            model: RwLock::new(None),
            projections: Mutex::new(HashMap::new()),
            config,
            feedback_since_train: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Feedback events recorded since the last full training run.
    pub fn feedback_since_train(&self) -> usize {
        self.feedback_since_train
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The shared database handle.
    pub fn db(&self) -> &SharedCrowdDb {
        &self.db
    }

    /// Marks a worker online (candidate for selection).
    pub fn set_online(&self, worker: WorkerId) {
        self.online.lock().set_online(worker);
        // Workers who joined after training start at the prior.
        if let Some(model) = self.model.write().as_mut() {
            model.add_worker(worker);
        }
    }

    /// Marks a worker offline.
    pub fn set_offline(&self, worker: WorkerId) {
        self.online.lock().set_offline(worker);
    }

    /// Number of online workers.
    pub fn num_online(&self) -> usize {
        self.online.lock().len()
    }

    /// Red path: batch latent-skill inference over all resolved tasks
    /// (Algorithm 2). Replaces the current model.
    pub fn train(&self) -> Result<FitReport, ManagerError> {
        let ts = {
            let db = self.db.read();
            crowd_core::TrainingSet::from_db(&db)
        };
        let (model, report) = TdpmTrainer::new(self.config.tdpm.clone())
            .fit_training_set(&ts)
            .map_err(|e| ManagerError::Model(e.to_string()))?;
        *self.model.write() = Some(model);
        self.projections.lock().clear();
        self.feedback_since_train
            .store(0, std::sync::atomic::Ordering::Relaxed);
        Ok(report)
    }

    /// `true` once a model is available.
    pub fn is_trained(&self) -> bool {
        self.model.read().is_some()
    }

    /// Blue path: accepts a new task, projects it onto the latent category
    /// space (Algorithm 3), stores it, and returns the top-k *online*
    /// workers (Eq. 1).
    pub fn submit_task(&self, text: &str) -> Result<(TaskId, Vec<RankedWorker>), ManagerError> {
        let model_guard = self.model.read();
        let model = model_guard.as_ref().ok_or(ManagerError::NotTrained)?;

        let (task, bow) = {
            let mut db = self.db.write();
            let tokens = tokenize_filtered(text);
            let bow = BagOfWords::from_tokens(&tokens, db.vocab_mut());
            let task = db.add_task_raw(text.to_owned(), bow.clone());
            (task, bow)
        };

        let projection = model.project_bow(&bow);
        let candidates: Vec<WorkerId> = self.online.lock().online_workers().collect();
        if candidates.is_empty() {
            return Err(ManagerError::NoWorkersOnline);
        }
        let selected = model.select_top_k(&projection, candidates, self.config.top_k);

        {
            let mut db = self.db.write();
            for r in &selected {
                db.assign(r.worker, task)?;
            }
        }
        self.projections.lock().insert(task, projection);
        Ok((task, selected))
    }

    /// Stores a worker's answer text for a dispatched task.
    pub fn record_answer(
        &self,
        worker: WorkerId,
        task: TaskId,
        text: &str,
    ) -> Result<(), ManagerError> {
        self.db.write().record_answer(worker, task, text)?;
        Ok(())
    }

    /// Records feedback: persists the score and incrementally updates the
    /// worker's posterior skill (Section 4.2's "after solving the task, the
    /// skills of workers involved can be updated").
    pub fn record_feedback(
        &self,
        worker: WorkerId,
        task: TaskId,
        score: f64,
    ) -> Result<(), ManagerError> {
        self.db.write().record_feedback(worker, task, score)?;
        let projection = self.projections.lock().get(&task).cloned();
        if let (Some(projection), Some(model)) = (projection, self.model.write().as_mut()) {
            model.add_worker(worker);
            model
                .record_feedback(worker, &projection, score)
                .map_err(|e| ManagerError::Model(e.to_string()))?;
        }
        let n = self
            .feedback_since_train
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        if let Some(every) = self.config.retrain_every {
            if n >= every && self.is_trained() {
                self.train()?;
            }
        }
        Ok(())
    }

    /// Read access to the current model (e.g. to inspect skills).
    pub fn with_model<T>(
        &self,
        f: impl FnOnce(&TdpmModel) -> T,
    ) -> Result<T, ManagerError> {
        self.model
            .read()
            .as_ref()
            .map(f)
            .ok_or(ManagerError::NotTrained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_store::CrowdDb;

    /// A db with two clearly separated specialists.
    fn seeded_manager(k: usize) -> (CrowdManager, WorkerId, WorkerId) {
        let mut db = CrowdDb::new();
        let dba = db.add_worker("dba");
        let stat = db.add_worker("stat");
        for i in 0..8 {
            let (text, good, bad) = if i % 2 == 0 {
                ("btree page split index buffer disk", dba, stat)
            } else {
                ("gaussian prior posterior likelihood variance", stat, dba)
            };
            let t = db.add_task(text);
            db.assign(good, t).unwrap();
            db.assign(bad, t).unwrap();
            db.record_feedback(good, t, 4.0).unwrap();
            db.record_feedback(bad, t, 0.5).unwrap();
        }
        let cfg = ManagerConfig {
            top_k: 1,
            tdpm: TdpmConfig {
                num_categories: k,
                max_em_iters: 20,
                seed: 7,
                ..TdpmConfig::default()
            },
            retrain_every: None,
        };
        let manager = CrowdManager::new(SharedCrowdDb::new(db), cfg);
        (manager, dba, stat)
    }

    #[test]
    fn untrained_manager_rejects_tasks() {
        let (manager, dba, _) = seeded_manager(2);
        manager.set_online(dba);
        assert_eq!(
            manager.submit_task("anything").unwrap_err(),
            ManagerError::NotTrained
        );
    }

    #[test]
    fn no_online_workers_is_an_error() {
        let (manager, _, _) = seeded_manager(2);
        manager.train().unwrap();
        assert_eq!(
            manager.submit_task("btree index").unwrap_err(),
            ManagerError::NoWorkersOnline
        );
    }

    #[test]
    fn selection_routes_to_online_specialist() {
        let (manager, dba, stat) = seeded_manager(2);
        manager.train().unwrap();
        assert!(manager.is_trained());
        manager.set_online(dba);
        manager.set_online(stat);
        assert_eq!(manager.num_online(), 2);

        let (task, selected) = manager.submit_task("btree page buffer").unwrap();
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].worker, dba);
        // The selected worker was assigned in the database.
        assert!(manager.db().read().is_assigned(dba, task));
    }

    #[test]
    fn offline_specialist_is_skipped() {
        let (manager, _dba, stat) = seeded_manager(2);
        manager.train().unwrap();
        manager.set_online(stat); // the DBA is offline
        let (_, selected) = manager.submit_task("btree page buffer").unwrap();
        assert_eq!(selected[0].worker, stat, "only online workers qualify");
    }

    #[test]
    fn feedback_round_trip_updates_model() {
        let (manager, dba, stat) = seeded_manager(2);
        manager.train().unwrap();
        manager.set_online(dba);
        manager.set_online(stat);

        let newbie = manager.db().write().add_worker("newbie");
        manager.set_online(newbie);

        // Newbie crushes several statistics questions.
        for _ in 0..6 {
            let (task, _) = manager
                .submit_task("gaussian posterior variance prior likelihood")
                .unwrap();
            // Even if not selected, the newbie answers (self-assign path):
            let mut db = manager.db().write();
            if !db.is_assigned(newbie, task) {
                db.assign(newbie, task).unwrap();
            }
            drop(db);
            manager.record_answer(newbie, task, "an excellent answer").unwrap();
            manager.record_feedback(newbie, task, 6.0).unwrap();
        }
        // The newbie's skill on the stats direction should now be strong
        // enough to win a stats task.
        let (_, selected) = manager
            .submit_task("prior posterior gaussian variance")
            .unwrap();
        assert_eq!(selected[0].worker, newbie, "selected: {selected:?}");
    }

    #[test]
    fn auto_retrain_fires_after_threshold() {
        let (manager, dba, stat) = seeded_manager(2);
        // Rebuild with a retrain policy of 3 feedback events.
        let manager = {
            let db = manager.db().clone();
            CrowdManager::new(
                db,
                ManagerConfig {
                    top_k: 1,
                    tdpm: TdpmConfig {
                        num_categories: 2,
                        max_em_iters: 5,
                        seed: 7,
                        ..TdpmConfig::default()
                    },
                    retrain_every: Some(3),
                },
            )
        };
        manager.train().unwrap();
        manager.set_online(dba);
        manager.set_online(stat);
        assert_eq!(manager.feedback_since_train(), 0);

        for i in 0..5 {
            let (task, selected) = manager.submit_task("btree page split").unwrap();
            manager
                .record_feedback(selected[0].worker, task, 2.0)
                .unwrap();
            // Counter resets when the threshold (3) is crossed.
            let n = manager.feedback_since_train();
            assert!(n < 3, "after event {i}: counter {n} must stay below 3");
        }
    }

    #[test]
    fn answers_are_persisted() {
        let (manager, dba, stat) = seeded_manager(2);
        manager.train().unwrap();
        manager.set_online(dba);
        manager.set_online(stat);
        let (task, selected) = manager.submit_task("btree split page").unwrap();
        let w = selected[0].worker;
        manager.record_answer(w, task, "split at the median key").unwrap();
        assert!(manager.db().read().answer(w, task).is_some());
    }
}
