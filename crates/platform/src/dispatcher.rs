//! The task dispatcher: delivers assignments to workers over channels.

use crate::events::Dispatch;
use crossbeam::channel::{unbounded, Receiver, Sender, TrySendError};
use crowd_store::WorkerId;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Routes [`Dispatch`] messages to per-worker inboxes.
///
/// Workers register to obtain a [`Receiver`]; the crowd manager (or the
/// pipeline driving it) dispatches selected assignments here. Unregistered
/// or disconnected workers are reported rather than silently dropped.
#[derive(Debug, Default)]
pub struct TaskDispatcher {
    inboxes: Mutex<HashMap<WorkerId, Sender<Dispatch>>>,
}

/// Dispatch outcome per worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchOutcome {
    /// Message delivered to the worker's inbox.
    Delivered,
    /// The worker never registered an inbox.
    NotRegistered,
    /// The worker's receiver was dropped (worker shut down).
    Disconnected,
}

impl TaskDispatcher {
    /// Creates an empty dispatcher.
    pub fn new() -> Self {
        TaskDispatcher::default()
    }

    /// Registers a worker, returning their inbox receiver.
    ///
    /// Re-registering replaces the previous inbox (the old receiver keeps
    /// its already-queued messages but gets nothing new).
    pub fn register(&self, worker: WorkerId) -> Receiver<Dispatch> {
        let (tx, rx) = unbounded();
        self.inboxes.lock().insert(worker, tx);
        rx
    }

    /// Removes a worker's inbox.
    pub fn unregister(&self, worker: WorkerId) {
        self.inboxes.lock().remove(&worker);
    }

    /// Number of registered workers.
    pub fn num_registered(&self) -> usize {
        self.inboxes.lock().len()
    }

    /// Sends a dispatch to one worker.
    ///
    /// A send to a dropped receiver both reports `Disconnected` *and*
    /// prunes the dead `Sender` from the inbox map — a worker that went
    /// away must not occupy a routing slot forever. Subsequent dispatches
    /// to the same worker report `NotRegistered` until they re-register.
    ///
    /// # Panics
    ///
    /// Panics if the underlying channel reports `Full`, which an unbounded
    /// channel never does — reaching it would be a routing-layer bug.
    pub fn dispatch(&self, worker: WorkerId, message: Dispatch) -> DispatchOutcome {
        let mut inboxes = self.inboxes.lock();
        match inboxes.get(&worker) {
            None => DispatchOutcome::NotRegistered,
            Some(tx) => match tx.try_send(message) {
                Ok(()) => DispatchOutcome::Delivered,
                Err(TrySendError::Disconnected(_)) => {
                    inboxes.remove(&worker);
                    DispatchOutcome::Disconnected
                }
                Err(TrySendError::Full(_)) => unreachable!("unbounded channel"),
            },
        }
    }

    /// Dispatches to several workers, returning per-worker outcomes.
    pub fn dispatch_all(
        &self,
        workers: &[WorkerId],
        message: &Dispatch,
    ) -> Vec<(WorkerId, DispatchOutcome)> {
        workers
            .iter()
            .map(|&w| (w, self.dispatch(w, message.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_store::TaskId;

    fn msg(id: u32) -> Dispatch {
        Dispatch {
            task: TaskId(id),
            text: format!("task {id}"),
        }
    }

    #[test]
    fn register_and_deliver() {
        let d = TaskDispatcher::new();
        let rx = d.register(WorkerId(1));
        assert_eq!(d.num_registered(), 1);
        assert_eq!(d.dispatch(WorkerId(1), msg(0)), DispatchOutcome::Delivered);
        assert_eq!(rx.recv().unwrap().task, TaskId(0));
    }

    #[test]
    fn unregistered_worker_reported() {
        let d = TaskDispatcher::new();
        assert_eq!(
            d.dispatch(WorkerId(9), msg(0)),
            DispatchOutcome::NotRegistered
        );
    }

    #[test]
    fn dropped_receiver_reported() {
        let d = TaskDispatcher::new();
        let rx = d.register(WorkerId(1));
        drop(rx);
        assert_eq!(
            d.dispatch(WorkerId(1), msg(0)),
            DispatchOutcome::Disconnected
        );
    }

    #[test]
    fn dropped_receiver_is_pruned_from_the_inbox_map() {
        let d = TaskDispatcher::new();
        let rx = d.register(WorkerId(1));
        let _rx2 = d.register(WorkerId(2));
        drop(rx);
        assert_eq!(d.num_registered(), 2, "dead sender still parked");
        assert_eq!(
            d.dispatch(WorkerId(1), msg(0)),
            DispatchOutcome::Disconnected
        );
        assert_eq!(d.num_registered(), 1, "disconnect prunes the inbox");
        assert_eq!(
            d.dispatch(WorkerId(1), msg(1)),
            DispatchOutcome::NotRegistered,
            "a pruned worker must re-register to receive again"
        );
    }

    #[test]
    fn unregister_removes_inbox() {
        let d = TaskDispatcher::new();
        let _rx = d.register(WorkerId(1));
        d.unregister(WorkerId(1));
        assert_eq!(d.num_registered(), 0);
        assert_eq!(
            d.dispatch(WorkerId(1), msg(0)),
            DispatchOutcome::NotRegistered
        );
    }

    #[test]
    fn dispatch_all_returns_mixed_outcomes() {
        let d = TaskDispatcher::new();
        let _rx = d.register(WorkerId(0));
        let outcomes = d.dispatch_all(&[WorkerId(0), WorkerId(1)], &msg(3));
        assert_eq!(outcomes[0].1, DispatchOutcome::Delivered);
        assert_eq!(outcomes[1].1, DispatchOutcome::NotRegistered);
    }

    #[test]
    fn messages_queue_in_order() {
        let d = TaskDispatcher::new();
        let rx = d.register(WorkerId(0));
        for i in 0..5 {
            d.dispatch(WorkerId(0), msg(i));
        }
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap().task, TaskId(i));
        }
    }
}
