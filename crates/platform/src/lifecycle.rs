//! Per-task lifecycle state machine: dispatched → answered / expired /
//! reassigned / abandoned.
//!
//! The paper's Figure-1 loop assumes selected workers answer; real crowds
//! no-show, straggle and disconnect. [`TaskLifecycle`] tracks one task's
//! assignments against per-assignment deadlines and decides — purely as a
//! function of the events fed to it — when to reassign to the next-best
//! standby (bounded retries, exponential backoff), when the task is
//! complete (quorum: m-of-k answers suffice), and when to give up
//! (abandonment).
//!
//! The machine is deliberately free of clocks, threads and channels: the
//! driver (the [`crate::Pipeline`] run loop, or a test) passes `Instant`s
//! in and executes the returned [`Directive`]s. That keeps every recovery
//! decision unit-testable without sleeping.

use crowd_store::{TaskId, WorkerId};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Retry/completion policy for one task's lifecycle.
#[derive(Debug, Clone)]
pub struct LifecyclePolicy {
    /// Valid answers that complete the task (clamped to ≥ 1).
    pub quorum: usize,
    /// Replacement assignments allowed before the task may be abandoned.
    pub max_reassignments: usize,
    /// Per-assignment answer deadline.
    pub deadline: Duration,
    /// Backoff before the first replacement dispatch; doubles per
    /// reassignment round.
    pub base_backoff: Duration,
    /// Upper bound on the exponential backoff.
    pub max_backoff: Duration,
}

impl Default for LifecyclePolicy {
    fn default() -> Self {
        LifecyclePolicy {
            quorum: 1,
            max_reassignments: 3,
            deadline: Duration::from_secs(5),
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// Where a task stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Still waiting for answers (assignments active or replacements in
    /// flight).
    Open,
    /// Enough valid answers arrived.
    Completed {
        /// `true` when quorum cut the task short — assignments were still
        /// outstanding (or in flight) when it completed.
        via_quorum: bool,
    },
    /// Retry budget and standby pool exhausted before quorum.
    Abandoned,
}

/// An action the driver must carry out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// Assign + dispatch `worker` as a replacement, after waiting out
    /// `backoff` (exponential per reassignment round).
    Reassign {
        /// The standby worker to promote.
        worker: WorkerId,
        /// How long to wait before dispatching.
        backoff: Duration,
    },
}

/// Lifecycle event counts, summed into the pipeline report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleCounters {
    /// Replacement assignments issued.
    pub reassignments: usize,
    /// Assignments whose deadline passed without an answer.
    pub expired_assignments: usize,
    /// Answers rejected as content-free.
    pub garbage_answers: usize,
    /// Dispatches that failed (worker unregistered or disconnected).
    pub failed_dispatches: usize,
}

#[derive(Debug, Clone)]
struct ActiveAssignment {
    worker: WorkerId,
    deadline: Instant,
}

/// The per-task state machine. See the module docs for the contract.
#[derive(Debug)]
pub struct TaskLifecycle {
    task: TaskId,
    policy: LifecyclePolicy,
    /// Remaining standby workers, best first.
    standbys: VecDeque<WorkerId>,
    active: Vec<ActiveAssignment>,
    answered: Vec<WorkerId>,
    /// Reassign directives issued but not yet resolved by the driver
    /// (via activate_reassigned / reassign_dispatch_failed).
    in_flight: usize,
    state: TaskState,
    counters: LifecycleCounters,
}

impl TaskLifecycle {
    /// Starts an open lifecycle for `task`. `standbys` is the ranked
    /// reassignment pool (best first); the initially selected workers are
    /// reported via [`TaskLifecycle::activate_initial`] /
    /// [`TaskLifecycle::initial_dispatch_failed`] as the driver dispatches
    /// them.
    pub fn new(task: TaskId, policy: LifecyclePolicy, standbys: Vec<WorkerId>) -> Self {
        let mut policy = policy;
        policy.quorum = policy.quorum.max(1);
        TaskLifecycle {
            task,
            policy,
            standbys: standbys.into(),
            active: Vec::new(),
            answered: Vec::new(),
            in_flight: 0,
            state: TaskState::Open,
            counters: LifecycleCounters::default(),
        }
    }

    /// The task this lifecycle tracks.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Current state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    /// `true` while the task awaits answers.
    pub fn is_open(&self) -> bool {
        self.state == TaskState::Open
    }

    /// Event counts so far.
    pub fn counters(&self) -> LifecycleCounters {
        self.counters
    }

    /// Workers whose valid answers were accepted, in arrival order.
    pub fn answered(&self) -> &[WorkerId] {
        &self.answered
    }

    /// `true` when `worker` currently holds an active (undecided)
    /// assignment.
    pub fn is_active(&self, worker: WorkerId) -> bool {
        self.active.iter().any(|a| a.worker == worker)
    }

    /// Records a successfully dispatched *initial* assignment.
    pub fn activate_initial(&mut self, worker: WorkerId, now: Instant) {
        self.active.push(ActiveAssignment {
            worker,
            deadline: now + self.policy.deadline,
        });
    }

    /// Records that an initial dispatch failed; may request a replacement.
    pub fn initial_dispatch_failed(&mut self, _worker: WorkerId) -> Vec<Directive> {
        self.counters.failed_dispatches += 1;
        let directive = self.replacement();
        self.settle();
        directive.into_iter().collect()
    }

    /// Records a successfully dispatched *replacement* assignment.
    pub fn activate_reassigned(&mut self, worker: WorkerId, now: Instant) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.active.push(ActiveAssignment {
            worker,
            deadline: now + self.policy.deadline,
        });
    }

    /// Records that a replacement dispatch failed; may request another.
    pub fn reassign_dispatch_failed(&mut self, _worker: WorkerId) -> Vec<Directive> {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.counters.failed_dispatches += 1;
        let directive = self.replacement();
        self.settle();
        directive.into_iter().collect()
    }

    /// Accepts a valid answer from `worker`. Returns `false` when the
    /// worker held no active assignment (late or unsolicited answer).
    /// Reaching quorum completes the task.
    pub fn on_valid_answer(&mut self, worker: WorkerId) -> bool {
        if self.state != TaskState::Open {
            return false;
        }
        let Some(idx) = self.active.iter().position(|a| a.worker == worker) else {
            return false;
        };
        self.active.swap_remove(idx);
        self.answered.push(worker);
        if self.state == TaskState::Open && self.answered.len() >= self.policy.quorum {
            self.state = TaskState::Completed {
                via_quorum: !self.active.is_empty() || self.in_flight > 0,
            };
        }
        true
    }

    /// Rejects `worker`'s answer as garbage: the assignment is spent and a
    /// replacement may be requested. Returns an empty vec when the worker
    /// held no active assignment.
    pub fn on_garbage_answer(&mut self, worker: WorkerId) -> Vec<Directive> {
        if self.state != TaskState::Open {
            return Vec::new();
        }
        let Some(idx) = self.active.iter().position(|a| a.worker == worker) else {
            return Vec::new();
        };
        self.active.swap_remove(idx);
        self.counters.garbage_answers += 1;
        let directive = self.replacement();
        self.settle();
        directive.into_iter().collect()
    }

    /// Expires every assignment whose deadline passed, requesting
    /// replacements while budget and standbys allow. Call periodically
    /// with the current time.
    pub fn tick(&mut self, now: Instant) -> Vec<Directive> {
        if self.state != TaskState::Open {
            return Vec::new();
        }
        let mut directives = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].deadline <= now {
                self.active.swap_remove(i);
                self.counters.expired_assignments += 1;
                directives.extend(self.replacement());
            } else {
                i += 1;
            }
        }
        self.settle();
        directives
    }

    /// Draws the next standby within budget; tracks it as in flight.
    fn replacement(&mut self) -> Option<Directive> {
        if self.state != TaskState::Open
            || self.counters.reassignments >= self.policy.max_reassignments
        {
            return None;
        }
        let worker = self.standbys.pop_front()?;
        // Backoff exponent only; saturating keeps the doubling monotone even
        // if the reassignment counter ever outgrew u32.
        let round = u32::try_from(self.counters.reassignments).unwrap_or(u32::MAX);
        self.counters.reassignments += 1;
        self.in_flight += 1;
        let backoff = self
            .policy
            .base_backoff
            .checked_mul(2u32.saturating_pow(round))
            .map_or(self.policy.max_backoff, |b| b.min(self.policy.max_backoff));
        Some(Directive::Reassign { worker, backoff })
    }

    /// Declares abandonment when nothing is active, nothing is in flight,
    /// and no replacement can ever be issued.
    fn settle(&mut self) {
        if self.state == TaskState::Open
            && self.active.is_empty()
            && self.in_flight == 0
            && self.answered.len() < self.policy.quorum
        {
            self.state = TaskState::Abandoned;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(quorum: usize, max_reassignments: usize) -> LifecyclePolicy {
        LifecyclePolicy {
            quorum,
            max_reassignments,
            deadline: Duration::from_millis(100),
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
        }
    }

    fn w(id: u32) -> WorkerId {
        WorkerId(id)
    }

    #[test]
    fn all_answers_complete_without_quorum_cut() {
        let now = Instant::now();
        let mut lc = TaskLifecycle::new(TaskId(0), policy(2, 3), vec![w(9)]);
        lc.activate_initial(w(1), now);
        lc.activate_initial(w(2), now);
        assert!(lc.on_valid_answer(w(1)));
        assert!(lc.is_open());
        assert!(lc.on_valid_answer(w(2)));
        assert_eq!(lc.state(), TaskState::Completed { via_quorum: false });
        assert_eq!(lc.counters(), LifecycleCounters::default());
    }

    #[test]
    fn quorum_completes_with_assignments_outstanding() {
        let now = Instant::now();
        let mut lc = TaskLifecycle::new(TaskId(0), policy(1, 3), vec![]);
        lc.activate_initial(w(1), now);
        lc.activate_initial(w(2), now);
        assert!(lc.on_valid_answer(w(2)));
        assert_eq!(lc.state(), TaskState::Completed { via_quorum: true });
        // The straggler's eventual answer is late, not accepted.
        assert!(!lc.on_valid_answer(w(1)));
        assert_eq!(lc.answered(), &[w(2)]);
    }

    #[test]
    fn expiry_reassigns_to_next_best_with_exponential_backoff() {
        let now = Instant::now();
        let mut lc = TaskLifecycle::new(TaskId(0), policy(2, 3), vec![w(10), w(11), w(12)]);
        lc.activate_initial(w(1), now);
        lc.activate_initial(w(2), now);

        // Nothing expires before the deadline.
        assert!(lc.tick(now + Duration::from_millis(50)).is_empty());
        // Both expire at once → two replacements, backoff doubling.
        let dirs = lc.tick(now + Duration::from_millis(150));
        assert_eq!(
            dirs,
            vec![
                Directive::Reassign {
                    worker: w(10),
                    backoff: Duration::from_millis(10),
                },
                Directive::Reassign {
                    worker: w(11),
                    backoff: Duration::from_millis(20),
                },
            ]
        );
        assert_eq!(lc.counters().expired_assignments, 2);
        assert_eq!(lc.counters().reassignments, 2);
        assert!(lc.is_open(), "replacements in flight keep the task open");

        let later = now + Duration::from_millis(200);
        lc.activate_reassigned(w(10), later);
        lc.activate_reassigned(w(11), later);
        assert!(lc.on_valid_answer(w(10)));
        assert!(lc.on_valid_answer(w(11)));
        assert_eq!(lc.state(), TaskState::Completed { via_quorum: false });
    }

    #[test]
    fn backoff_is_capped() {
        let now = Instant::now();
        let standbys = (10..20).map(w).collect();
        let mut lc = TaskLifecycle::new(TaskId(0), policy(1, 8), standbys);
        lc.activate_initial(w(1), now);
        let mut t = now;
        let mut last_backoff = Duration::ZERO;
        for round in 0..5 {
            t += Duration::from_millis(150);
            let dirs = lc.tick(t);
            assert_eq!(dirs.len(), 1, "round {round}");
            let Directive::Reassign { worker, backoff } = dirs[0].clone();
            last_backoff = backoff;
            lc.activate_reassigned(worker, t);
        }
        assert_eq!(last_backoff, Duration::from_millis(80), "capped at max");
    }

    #[test]
    fn budget_exhaustion_abandons() {
        let now = Instant::now();
        let mut lc = TaskLifecycle::new(TaskId(0), policy(1, 1), vec![w(10), w(11)]);
        lc.activate_initial(w(1), now);
        let dirs = lc.tick(now + Duration::from_millis(150));
        assert_eq!(dirs.len(), 1, "one reassignment allowed");
        lc.activate_reassigned(w(10), now + Duration::from_millis(150));
        // The replacement also expires; the budget is spent → abandoned.
        assert!(lc.tick(now + Duration::from_millis(300)).is_empty());
        assert_eq!(lc.state(), TaskState::Abandoned);
        assert_eq!(lc.counters().expired_assignments, 2);
        assert_eq!(lc.counters().reassignments, 1);
    }

    #[test]
    fn empty_standby_pool_abandons() {
        let now = Instant::now();
        let mut lc = TaskLifecycle::new(TaskId(0), policy(1, 5), vec![]);
        lc.activate_initial(w(1), now);
        assert!(lc.tick(now + Duration::from_millis(150)).is_empty());
        assert_eq!(lc.state(), TaskState::Abandoned);
    }

    #[test]
    fn garbage_answer_burns_the_assignment_and_reassigns() {
        let now = Instant::now();
        let mut lc = TaskLifecycle::new(TaskId(0), policy(1, 3), vec![w(10)]);
        lc.activate_initial(w(1), now);
        let dirs = lc.on_garbage_answer(w(1));
        assert_eq!(dirs.len(), 1);
        assert_eq!(lc.counters().garbage_answers, 1);
        lc.activate_reassigned(w(10), now);
        assert!(lc.on_valid_answer(w(10)));
        assert_eq!(lc.state(), TaskState::Completed { via_quorum: false });
    }

    #[test]
    fn failed_dispatch_falls_through_to_standby() {
        let now = Instant::now();
        let mut lc = TaskLifecycle::new(TaskId(0), policy(1, 3), vec![w(10), w(11)]);
        lc.activate_initial(w(1), now);
        // The second initial dispatch failed (disconnected worker).
        let dirs = lc.initial_dispatch_failed(w(2));
        assert_eq!(dirs.len(), 1);
        assert_eq!(lc.counters().failed_dispatches, 1);
        // That replacement's dispatch fails too → next standby.
        let Directive::Reassign { worker, .. } = dirs[0].clone();
        let dirs = lc.reassign_dispatch_failed(worker);
        assert_eq!(dirs.len(), 1);
        assert_eq!(lc.counters().reassignments, 2);
        assert!(lc.is_open());
    }

    #[test]
    fn garbage_from_inactive_worker_is_ignored() {
        let now = Instant::now();
        let mut lc = TaskLifecycle::new(TaskId(0), policy(1, 3), vec![]);
        lc.activate_initial(w(1), now);
        assert!(lc.on_garbage_answer(w(99)).is_empty());
        assert_eq!(lc.counters().garbage_answers, 0);
        assert!(lc.is_open());
    }

    #[test]
    fn quorum_zero_is_clamped_to_one() {
        let now = Instant::now();
        let mut lc = TaskLifecycle::new(TaskId(0), policy(0, 0), vec![]);
        lc.activate_initial(w(1), now);
        assert!(lc.is_open());
        assert!(lc.on_valid_answer(w(1)));
        assert_eq!(lc.state(), TaskState::Completed { via_quorum: false });
    }
}
