//! End-to-end pipeline: manager + dispatcher + simulated workers +
//! collector, on real threads — now driven through the fault-tolerant
//! [`TaskLifecycle`] state machine.
//!
//! Each submitted task is dispatched to the ranked top-k; assignments that
//! expire, return garbage, or fail to deliver are reassigned to the
//! next-best standby worker under bounded retries with exponential
//! backoff, and a task completes as soon as a quorum of valid answers
//! arrives. Every recovery event is counted in the [`PipelineReport`].

use crate::collector::AnswerCollector;
use crate::dispatcher::{DispatchOutcome, TaskDispatcher};
use crate::events::{AnswerEvent, Dispatch, FeedbackEvent};
use crate::lifecycle::{Directive, LifecyclePolicy, TaskLifecycle, TaskState};
use crate::manager::{CrowdManager, ManagerConfig, ManagerError};
use crowd_core::{TdpmBackend, TdpmConfig};
use crowd_select::SelectorBackend;
use crowd_store::{CrowdDb, SharedCrowdDb, TaskId, WorkerId};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a simulated worker answers a dispatched task.
pub type AnswerFn = dyn Fn(WorkerId, &Dispatch) -> String + Send + Sync;

/// Full behaviour of a simulated worker facing a dispatch — the knob a
/// fault-injection harness (e.g. `crowd_sim::FaultPlan`) turns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerReply {
    /// Answer immediately with this text.
    Answer(String),
    /// Never answer this dispatch (no-show).
    Silent,
    /// Sleep for the duration, then answer (straggler).
    Delayed(Duration, String),
    /// Drop the inbox and exit the worker thread (mid-run disconnect).
    Disconnect,
}

/// Behaviour function: decides a [`WorkerReply`] per dispatch.
pub type BehaviorFn = dyn Fn(WorkerId, &Dispatch) -> WorkerReply + Send + Sync;

/// How the (simulated) asker scores a returned answer.
pub type ScoreFn = dyn Fn(WorkerId, &Dispatch, &str) -> f64 + Send + Sync;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Workers selected per task.
    pub top_k: usize,
    /// Model hyper-parameters.
    pub tdpm: TdpmConfig,
    /// Per-assignment deadline: how long each dispatched worker gets to
    /// answer before the assignment expires and is reassigned.
    pub answer_timeout: Duration,
    /// Valid answers that complete a task (m-of-k). `None` requires an
    /// answer from every initially dispatched worker.
    pub quorum: Option<usize>,
    /// Replacement assignments allowed per task before abandonment.
    pub max_reassignments: usize,
    /// Backoff before the first replacement dispatch; doubles per round.
    pub base_backoff: Duration,
    /// Cap on the exponential backoff.
    pub max_backoff: Duration,
    /// Reject answers whose text tokenizes to nothing (garbage) and
    /// reassign, instead of persisting them.
    pub reject_garbage: bool,
    /// Observability handle. The default is a no-op; pass a real
    /// [`crowd_obs::Obs`] to record lifecycle counters, dispatch→answer
    /// latency (`platform` component) and trainer/model metrics from the
    /// TDPM backend the pipeline fits.
    pub obs: crowd_obs::Obs,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            top_k: 2,
            tdpm: TdpmConfig::default(),
            answer_timeout: Duration::from_secs(5),
            quorum: None,
            max_reassignments: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            reject_garbage: true,
            obs: crowd_obs::Obs::noop(),
        }
    }
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Tasks accepted by the manager.
    pub tasks_submitted: usize,
    /// Dispatches that reached a worker inbox (initial + reassigned).
    pub dispatches_delivered: usize,
    /// Answers persisted.
    pub answers_collected: usize,
    /// Feedback scores applied (db + incremental model update).
    pub feedback_applied: usize,
    /// Tasks that failed to reach quorum (same tasks as `abandonments`;
    /// kept for backward compatibility).
    pub timeouts: usize,
    /// Event-level errors.
    pub errors: usize,
    /// Replacement assignments issued across all tasks.
    pub reassignments: usize,
    /// Tasks completed by quorum while assignments were still outstanding.
    pub quorum_completions: usize,
    /// Tasks abandoned after exhausting retries/standbys.
    pub abandonments: usize,
    /// Assignments whose deadline passed without an answer.
    pub expired_assignments: usize,
    /// Answers rejected as content-free.
    pub garbage_answers: usize,
    /// Answers that arrived after their task was already decided.
    pub late_answers: usize,
    /// Workers pruned from dispatch/online state after a disconnect.
    pub pruned_workers: usize,
    /// Failed backend refits survived by serving the last-good snapshot
    /// (manager total at the end of the run).
    pub degraded_epochs: u64,
}

/// The wired-up system of Figure 1.
pub struct Pipeline {
    manager: Arc<CrowdManager>,
    dispatcher: Arc<TaskDispatcher>,
    collector: AnswerCollector,
    config: PipelineConfig,
    worker_threads: Vec<JoinHandle<()>>,
    workers: Vec<WorkerId>,
    metrics: PipelineMetrics,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("workers", &self.workers.len())
            .field("worker_threads", &self.worker_threads.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Pre-resolved handles into [`PipelineConfig::obs`] (component
/// `platform`). The lifecycle counters are *re-exported* from the
/// per-task [`crate::lifecycle::LifecycleCounters`] and the per-run
/// [`PipelineReport`] — the state machine stays the single source of
/// truth; the registry just mirrors its totals.
struct PipelineMetrics {
    tasks_submitted: std::sync::Arc<crowd_obs::Counter>,
    dispatches_delivered: std::sync::Arc<crowd_obs::Counter>,
    answers_collected: std::sync::Arc<crowd_obs::Counter>,
    feedback_applied: std::sync::Arc<crowd_obs::Counter>,
    reassignments: std::sync::Arc<crowd_obs::Counter>,
    quorum_completions: std::sync::Arc<crowd_obs::Counter>,
    abandonments: std::sync::Arc<crowd_obs::Counter>,
    expired_assignments: std::sync::Arc<crowd_obs::Counter>,
    garbage_answers: std::sync::Arc<crowd_obs::Counter>,
    late_answers: std::sync::Arc<crowd_obs::Counter>,
    dispatch_to_answer_seconds: std::sync::Arc<crowd_obs::Histogram>,
    degraded_epochs: std::sync::Arc<crowd_obs::Gauge>,
}

impl PipelineMetrics {
    fn resolve(obs: &crowd_obs::Obs) -> Self {
        let m = &obs.metrics;
        PipelineMetrics {
            tasks_submitted: m.counter("platform", "tasks_submitted"),
            dispatches_delivered: m.counter("platform", "dispatches_delivered"),
            answers_collected: m.counter("platform", "answers_collected"),
            feedback_applied: m.counter("platform", "feedback_applied"),
            reassignments: m.counter("platform", "reassignments"),
            quorum_completions: m.counter("platform", "quorum_completions"),
            abandonments: m.counter("platform", "abandonments"),
            expired_assignments: m.counter("platform", "expired_assignments"),
            garbage_answers: m.counter("platform", "garbage_answers"),
            late_answers: m.counter("platform", "late_answers"),
            dispatch_to_answer_seconds: m.histogram("platform", "dispatch_to_answer_seconds"),
            degraded_epochs: m.gauge("platform", "degraded_epochs"),
        }
    }

    /// Mirrors one run's report into the registry (counters take deltas,
    /// the degraded-epochs gauge tracks the manager's running total).
    fn record_run(&self, report: &PipelineReport) {
        self.tasks_submitted.add(report.tasks_submitted as u64);
        self.dispatches_delivered
            .add(report.dispatches_delivered as u64);
        self.answers_collected.add(report.answers_collected as u64);
        self.feedback_applied.add(report.feedback_applied as u64);
        self.reassignments.add(report.reassignments as u64);
        self.quorum_completions
            .add(report.quorum_completions as u64);
        self.abandonments.add(report.abandonments as u64);
        self.expired_assignments
            .add(report.expired_assignments as u64);
        self.garbage_answers.add(report.garbage_answers as u64);
        self.late_answers.add(report.late_answers as u64);
        self.degraded_epochs.set(report.degraded_epochs as f64);
    }
}

impl Pipeline {
    /// Builds the pipeline over an existing database, trains the initial
    /// TDPM model (red path) and spawns one thread per registered worker.
    pub fn start(
        db: CrowdDb,
        config: PipelineConfig,
        answer_fn: Arc<AnswerFn>,
    ) -> Result<Self, ManagerError> {
        let backend =
            Box::new(TdpmBackend::with_config(config.tdpm.clone()).with_obs(config.obs.clone()));
        Pipeline::start_with_backend(db, config, answer_fn, backend)
    }

    /// Like [`Pipeline::start`], but selecting with an arbitrary backend
    /// (e.g. `crowd_baselines::VsmBackend`) instead of TDPM.
    pub fn start_with_backend(
        db: CrowdDb,
        config: PipelineConfig,
        answer_fn: Arc<AnswerFn>,
        backend: Box<dyn SelectorBackend>,
    ) -> Result<Self, ManagerError> {
        let behavior: Arc<BehaviorFn> = Arc::new(move |w, d| WorkerReply::Answer(answer_fn(w, d)));
        Pipeline::start_with_behavior(db, config, behavior, backend)
    }

    /// Like [`Pipeline::start_with_backend`], but workers follow a full
    /// [`BehaviorFn`] — they may stay silent, answer late, or disconnect.
    /// This is the entry point fault-injection harnesses use.
    pub fn start_with_behavior(
        db: CrowdDb,
        config: PipelineConfig,
        behavior: Arc<BehaviorFn>,
        backend: Box<dyn SelectorBackend>,
    ) -> Result<Self, ManagerError> {
        let workers: Vec<WorkerId> = db.worker_ids().collect();
        let manager = Arc::new(CrowdManager::with_backend(
            SharedCrowdDb::new(db),
            ManagerConfig {
                top_k: config.top_k,
                tdpm: config.tdpm.clone(),
                retrain_every: None,
            },
            backend,
        ));
        manager.train()?;

        let dispatcher = Arc::new(TaskDispatcher::new());
        let collector = AnswerCollector::new();

        let mut worker_threads = Vec::with_capacity(workers.len());
        for &w in &workers {
            manager.set_online(w);
            let inbox = dispatcher.register(w);
            let answers = collector.answer_sender();
            let behave = Arc::clone(&behavior);
            // crowd-lint: allow(no-per-call-thread-spawn) -- simulated crowd workers live for the whole pipeline run, not per query; scoring work still goes through the pool
            worker_threads.push(std::thread::spawn(move || {
                // The worker loop: react to every dispatched task until the
                // dispatcher drops our inbox sender — or we disconnect.
                while let Ok(dispatch) = inbox.recv() {
                    let reply = behave(w, &dispatch);
                    let text = match reply {
                        WorkerReply::Answer(text) => text,
                        WorkerReply::Silent => continue,
                        WorkerReply::Delayed(delay, text) => {
                            std::thread::sleep(delay);
                            text
                        }
                        WorkerReply::Disconnect => break,
                    };
                    if answers
                        .send(AnswerEvent {
                            worker: w,
                            task: dispatch.task,
                            text,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            }));
        }

        let metrics = PipelineMetrics::resolve(&config.obs);
        Ok(Pipeline {
            manager,
            dispatcher,
            collector,
            config,
            worker_threads,
            workers,
            metrics,
        })
    }

    /// The crowd manager (for inspection).
    pub fn manager(&self) -> &CrowdManager {
        &self.manager
    }

    /// Processes a stream of task texts: select → dispatch → collect →
    /// score → feedback, per task, with per-assignment deadlines, quorum
    /// completion, and reassignment on expiry/garbage/disconnect.
    pub fn run(&self, tasks: &[&str], score_fn: &ScoreFn) -> PipelineReport {
        let mut report = PipelineReport::default();
        for &text in tasks {
            let Ok(submission) = self.manager.submit_task_ranked(text) else {
                report.errors += 1;
                continue;
            };
            self.drive_submission(text, submission, score_fn, &mut report);
        }
        self.finish_run(report)
    }

    /// Like [`Pipeline::run`], but all tasks are submitted *up front*
    /// through [`CrowdManager::submit_tasks_ranked`] — one snapshot lock and
    /// one candidate resolution for the whole batch — and then driven to
    /// completion one by one.
    ///
    /// Semantics differ from [`Pipeline::run`] in exactly one way: every
    /// ranking is computed against the model state *before any* of the
    /// batch's feedback, whereas the sequential path folds each task's
    /// feedback into the next task's selection. Use it for bursts of
    /// independent tasks where dispatch throughput matters more than
    /// within-burst adaptation.
    pub fn run_batched(&self, tasks: &[&str], score_fn: &ScoreFn) -> PipelineReport {
        let mut report = PipelineReport::default();
        let submissions = match self.manager.submit_tasks_ranked(tasks) {
            Ok(submissions) => submissions,
            Err(_) => {
                report.errors += tasks.len();
                return self.finish_run(report);
            }
        };
        for (&text, submission) in tasks.iter().zip(submissions) {
            self.drive_submission(text, submission, score_fn, &mut report);
        }
        self.finish_run(report)
    }

    /// Drives one submitted task through dispatch → collect → score →
    /// feedback, with deadlines, quorum completion and reassignment.
    fn drive_submission(
        &self,
        text: &str,
        submission: crate::manager::TaskSubmission,
        score_fn: &ScoreFn,
        report: &mut PipelineReport,
    ) {
        report.tasks_submitted += 1;
        let task = submission.task;
        let dispatch = Dispatch {
            task,
            text: text.to_owned(),
        };

        let quorum = self
            .config
            .quorum
            .unwrap_or(submission.selected.len())
            .min(submission.selected.len());
        let policy = LifecyclePolicy {
            quorum,
            max_reassignments: self.config.max_reassignments,
            deadline: self.config.answer_timeout,
            base_backoff: self.config.base_backoff,
            max_backoff: self.config.max_backoff,
        };
        let standbys: Vec<WorkerId> = submission.standbys.iter().map(|r| r.worker).collect();
        let mut lifecycle = TaskLifecycle::new(task, policy, standbys);

        // Initial dispatch wave: the assigned top-k.
        let mut queue: VecDeque<(Instant, WorkerId)> = VecDeque::new();
        // When each active assignment was delivered, for the
        // dispatch→answer latency histogram (reassignment overwrites).
        let mut dispatched_at: HashMap<WorkerId, Instant> = HashMap::new();
        let now = Instant::now();
        for r in &submission.selected {
            match self.dispatcher.dispatch(r.worker, dispatch.clone()) {
                DispatchOutcome::Delivered => {
                    report.dispatches_delivered += 1;
                    lifecycle.activate_initial(r.worker, now);
                    dispatched_at.insert(r.worker, now);
                }
                outcome => {
                    self.note_undeliverable(r.worker, outcome, report);
                    let directives = lifecycle.initial_dispatch_failed(r.worker);
                    enqueue(&mut queue, directives, now);
                }
            }
        }

        // Drive the lifecycle until the task is decided.
        while lifecycle.is_open() {
            let now = Instant::now();

            // Dispatch replacements whose backoff elapsed.
            while let Some(&(ready, worker)) = queue.front() {
                if ready > now {
                    break;
                }
                queue.pop_front();
                if self.manager.assign(worker, task).is_err() {
                    report.errors += 1;
                    let directives = lifecycle.reassign_dispatch_failed(worker);
                    enqueue(&mut queue, directives, now);
                    continue;
                }
                match self.dispatcher.dispatch(worker, dispatch.clone()) {
                    DispatchOutcome::Delivered => {
                        report.dispatches_delivered += 1;
                        lifecycle.activate_reassigned(worker, now);
                        dispatched_at.insert(worker, now);
                    }
                    outcome => {
                        self.note_undeliverable(worker, outcome, report);
                        let directives = lifecycle.reassign_dispatch_failed(worker);
                        enqueue(&mut queue, directives, now);
                    }
                }
            }

            // Attribute incoming answers to their assignments.
            while let Some(event) = self.collector.try_recv_answer() {
                self.handle_answer(
                    event,
                    task,
                    &mut lifecycle,
                    &mut queue,
                    &dispatched_at,
                    report,
                );
            }

            // Expire overdue assignments.
            let directives = lifecycle.tick(Instant::now());
            enqueue(&mut queue, directives, Instant::now());

            if lifecycle.is_open() {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        queue.clear();

        let counters = lifecycle.counters();
        report.reassignments += counters.reassignments;
        report.expired_assignments += counters.expired_assignments;
        report.garbage_answers += counters.garbage_answers;
        match lifecycle.state() {
            TaskState::Completed { via_quorum: true } => report.quorum_completions += 1,
            TaskState::Completed { via_quorum: false } => {}
            TaskState::Abandoned => {
                report.abandonments += 1;
                report.timeouts += 1;
            }
            TaskState::Open => unreachable!("loop exits only on decided tasks"),
        }

        // Score the workers whose answers were accepted.
        for &w in lifecycle.answered() {
            let answer_text = self
                .manager
                .db()
                .read()
                .answer(w, task)
                .map(|bag| format!("{} terms", bag.distinct_terms()))
                .unwrap_or_default();
            let score = score_fn(w, &dispatch, &answer_text);
            let fb = FeedbackEvent {
                worker: w,
                task,
                score,
            };
            if self.collector.send_feedback(fb).is_err() {
                report.errors += 1;
            }
        }
        let drained = self.collector.drain_feedback_into(&self.manager);
        report.feedback_applied += drained.feedback;
        report.errors += drained.errors;
    }

    /// Shared tail of [`Pipeline::run`] / [`Pipeline::run_batched`]: drains
    /// straggler answers, stamps the degradation total and mirrors the
    /// report into the metrics registry.
    fn finish_run(&self, mut report: PipelineReport) -> PipelineReport {
        // Collect any last stragglers so their answers are at least stored.
        while let Some(event) = self.collector.try_recv_answer() {
            report.late_answers += 1;
            let _ = self
                .manager
                .record_answer(event.worker, event.task, &event.text);
        }
        report.degraded_epochs = self.manager.degraded_epochs();
        self.metrics.record_run(&report);
        self.config.obs.tracer.event(
            "platform",
            "run",
            vec![
                ("tasks".to_owned(), report.tasks_submitted.into()),
                ("answers".to_owned(), report.answers_collected.into()),
                ("reassignments".to_owned(), report.reassignments.into()),
                ("abandonments".to_owned(), report.abandonments.into()),
            ],
        );
        report
    }

    /// Routes one answer event: valid answers advance the lifecycle,
    /// garbage burns the assignment, anything unattributed is late.
    fn handle_answer(
        &self,
        event: AnswerEvent,
        task: TaskId,
        lifecycle: &mut TaskLifecycle,
        queue: &mut VecDeque<(Instant, WorkerId)>,
        dispatched_at: &HashMap<WorkerId, Instant>,
        report: &mut PipelineReport,
    ) {
        let now = Instant::now();
        if event.task != task || !lifecycle.is_active(event.worker) {
            // A straggler from an earlier decision point; persist it for
            // the record, but it influences nothing.
            report.late_answers += 1;
            let _ = self
                .manager
                .record_answer(event.worker, event.task, &event.text);
            return;
        }
        let is_garbage =
            self.config.reject_garbage && crowd_text::tokenize_filtered(&event.text).is_empty();
        if is_garbage {
            let directives = lifecycle.on_garbage_answer(event.worker);
            enqueue(queue, directives, now);
            return;
        }
        match self
            .manager
            .record_answer(event.worker, event.task, &event.text)
        {
            Ok(()) => {
                report.answers_collected += 1;
                lifecycle.on_valid_answer(event.worker);
                if let Some(&sent) = dispatched_at.get(&event.worker) {
                    self.metrics
                        .dispatch_to_answer_seconds
                        .observe_duration(now.duration_since(sent));
                }
            }
            Err(_) => {
                // The store refused the answer (e.g. assignment lost to a
                // corrupted record): count it and burn the assignment so
                // the lifecycle can recover via reassignment.
                report.errors += 1;
                let directives = lifecycle.on_garbage_answer(event.worker);
                enqueue(queue, directives, now);
            }
        }
    }

    /// Books a failed dispatch: disconnected workers are pruned from the
    /// dispatcher (see [`TaskDispatcher::dispatch`]) and marked offline so
    /// selection stops proposing them.
    fn note_undeliverable(
        &self,
        worker: WorkerId,
        outcome: DispatchOutcome,
        report: &mut PipelineReport,
    ) {
        if outcome == DispatchOutcome::Disconnected {
            report.pruned_workers += 1;
        }
        self.manager.set_offline(worker);
    }

    /// Shuts down worker threads and returns the manager.
    pub fn shutdown(mut self) -> Arc<CrowdManager> {
        for &w in &self.workers {
            self.dispatcher.unregister(w);
        }
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
        Arc::clone(&self.manager)
    }
}

/// Queues directives at their dispatch-ready time (now + backoff).
fn enqueue(queue: &mut VecDeque<(Instant, WorkerId)>, directives: Vec<Directive>, now: Instant) {
    for Directive::Reassign { worker, backoff } in directives {
        queue.push_back((now + backoff, worker));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specialist_db() -> (CrowdDb, WorkerId, WorkerId) {
        let mut db = CrowdDb::new();
        let dba = db.add_worker("dba");
        let stat = db.add_worker("stat");
        for i in 0..8 {
            let (text, good, bad) = if i % 2 == 0 {
                ("btree page split index buffer disk", dba, stat)
            } else {
                ("gaussian prior posterior likelihood variance", stat, dba)
            };
            let t = db.add_task(text);
            db.assign(good, t).unwrap();
            db.assign(bad, t).unwrap();
            db.record_feedback(good, t, 4.0).unwrap();
            db.record_feedback(bad, t, 0.5).unwrap();
        }
        (db, dba, stat)
    }

    fn config() -> PipelineConfig {
        PipelineConfig {
            top_k: 1,
            tdpm: TdpmConfig {
                num_categories: 2,
                max_em_iters: 15,
                seed: 7,
                ..TdpmConfig::default()
            },
            answer_timeout: Duration::from_secs(5),
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn full_loop_processes_all_tasks() {
        let (db, dba, _) = specialist_db();
        let answer_fn: Arc<AnswerFn> = Arc::new(|w, d| format!("answer to {} from {w}", d.task));
        let pipeline = Pipeline::start(db, config(), answer_fn).unwrap();

        let tasks = vec![
            "btree page buffer question",
            "gaussian variance question",
            "btree index split question",
        ];
        let score_fn: Box<ScoreFn> = Box::new(|_, _, _| 1.0);
        let report = pipeline.run(&tasks, &*score_fn);

        assert_eq!(report.tasks_submitted, 3);
        assert_eq!(report.dispatches_delivered, 3, "top_k = 1 per task");
        assert_eq!(report.answers_collected, 3);
        assert_eq!(report.feedback_applied, 3);
        assert_eq!(report.timeouts, 0);
        assert_eq!(report.errors, 0);
        assert_eq!(report.reassignments, 0);
        assert_eq!(report.abandonments, 0);
        assert_eq!(report.garbage_answers, 0);

        let manager = pipeline.shutdown();
        // The db task (first) should have gone to the DBA.
        let db = manager.db().read();
        let btree_task = crowd_store::TaskId((db.num_tasks() - 3) as u32);
        assert!(db.is_assigned(dba, btree_task));
        assert_eq!(db.feedback(dba, btree_task), Some(1.0));
    }

    #[test]
    fn batched_run_processes_all_tasks() {
        let (db, dba, _) = specialist_db();
        let answer_fn: Arc<AnswerFn> = Arc::new(|w, d| format!("answer to {} from {w}", d.task));
        let pipeline = Pipeline::start(db, config(), answer_fn).unwrap();

        let tasks = vec![
            "btree page buffer question",
            "gaussian variance question",
            "btree index split question",
        ];
        let score_fn: Box<ScoreFn> = Box::new(|_, _, _| 1.0);
        let report = pipeline.run_batched(&tasks, &*score_fn);

        assert_eq!(report.tasks_submitted, 3);
        assert_eq!(report.dispatches_delivered, 3, "top_k = 1 per task");
        assert_eq!(report.answers_collected, 3);
        assert_eq!(report.feedback_applied, 3);
        assert_eq!(report.errors, 0);
        assert_eq!(report.abandonments, 0);

        let manager = pipeline.shutdown();
        let db = manager.db().read();
        let btree_task = crowd_store::TaskId((db.num_tasks() - 3) as u32);
        assert!(
            db.is_assigned(dba, btree_task),
            "routed before any feedback"
        );
        assert_eq!(db.feedback(dba, btree_task), Some(1.0));
    }

    #[test]
    fn batched_run_surfaces_submission_failure_per_task() {
        let (db, _, _) = specialist_db();
        let answer_fn: Arc<AnswerFn> = Arc::new(|_, _| "ok".into());
        let pipeline = Pipeline::start(db, config(), answer_fn).unwrap();
        // Everyone offline: the batch submission fails as a unit.
        for w in pipeline
            .manager()
            .db()
            .read()
            .worker_ids()
            .collect::<Vec<_>>()
        {
            pipeline.manager().set_offline(w);
        }
        let score_fn: Box<ScoreFn> = Box::new(|_, _, _| 1.0);
        let report = pipeline.run_batched(&["a", "b"], &*score_fn);
        assert_eq!(report.errors, 2);
        assert_eq!(report.tasks_submitted, 0);
        pipeline.shutdown();
    }

    #[test]
    fn shutdown_joins_worker_threads() {
        let (db, _, _) = specialist_db();
        let answer_fn: Arc<AnswerFn> = Arc::new(|_, _| "ok".into());
        let pipeline = Pipeline::start(db, config(), answer_fn).unwrap();
        let manager = pipeline.shutdown();
        assert!(manager.is_trained());
    }

    #[test]
    fn feedback_flows_into_model_updates() {
        let (db, dba, stat) = specialist_db();
        let answer_fn: Arc<AnswerFn> = Arc::new(|_, _| "useful answer text".into());
        let pipeline = Pipeline::start(db, config(), answer_fn).unwrap();

        let stats_text = "gaussian posterior variance prior";
        let before = pipeline
            .manager()
            .with_model(|m| {
                let bow = crowd_text::BagOfWords::from_tokens(
                    &crowd_text::tokenize_filtered(stats_text),
                    pipeline.manager().db().write().vocab_mut(),
                );
                let p = m.project_bow(&bow);
                m.score(stat, &p).unwrap()
            })
            .unwrap();

        // With top_k = 1 the stat expert wins the stats questions — and then
        // receives terrible feedback, which the incremental update must fold
        // back into their skill estimate.
        let score_fn: Box<ScoreFn> = Box::new(move |w, _, _| if w == dba { 8.0 } else { 0.1 });
        let stats_tasks: Vec<&str> = std::iter::repeat_n(stats_text, 8).collect();
        let report = pipeline.run(&stats_tasks, &*score_fn);
        assert_eq!(report.tasks_submitted, 8);
        assert_eq!(report.feedback_applied, 8);

        let manager = pipeline.shutdown();
        let after = manager
            .with_model(|m| {
                let bow = crowd_text::BagOfWords::from_tokens(
                    &crowd_text::tokenize_filtered(stats_text),
                    manager.db().write().vocab_mut(),
                );
                let p = m.project_bow(&bow);
                m.score(stat, &p).unwrap()
            })
            .unwrap();
        assert!(
            after < before - 0.3,
            "repeated 0.1-score feedback must erode the stat expert's \
             predicted performance: before {before}, after {after}"
        );
    }

    #[test]
    fn no_show_worker_triggers_reassignment() {
        let (db, dba, _stat) = specialist_db();
        let no_show = dba;
        let behavior: Arc<BehaviorFn> = Arc::new(move |w, d| {
            if w == no_show {
                WorkerReply::Silent
            } else {
                WorkerReply::Answer(format!("answer to {} from {w}", d.task))
            }
        });
        let cfg = PipelineConfig {
            answer_timeout: Duration::from_millis(120),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            ..config()
        };
        let backend = Box::new(TdpmBackend::with_config(cfg.tdpm.clone()));
        let pipeline = Pipeline::start_with_behavior(db, cfg, behavior, backend).unwrap();

        // The DBA wins btree questions but never answers: the task must
        // fall through to the standby (the stat expert) and complete.
        let score_fn: Box<ScoreFn> = Box::new(|_, _, _| 1.0);
        let report = pipeline.run(&["btree page buffer index question"], &*score_fn);
        assert_eq!(report.tasks_submitted, 1);
        assert_eq!(report.abandonments, 0, "{report:?}");
        assert_eq!(report.expired_assignments, 1);
        assert_eq!(report.reassignments, 1);
        assert_eq!(report.answers_collected, 1);
        pipeline.shutdown();
    }

    #[test]
    fn garbage_answers_are_rejected_and_reassigned() {
        let (db, dba, _) = specialist_db();
        let noisy = dba;
        let behavior: Arc<BehaviorFn> = Arc::new(move |w, d| {
            if w == noisy {
                WorkerReply::Answer("?!... --- !!".into())
            } else {
                WorkerReply::Answer(format!("real answer to {} from {w}", d.task))
            }
        });
        let cfg = PipelineConfig {
            answer_timeout: Duration::from_millis(500),
            base_backoff: Duration::from_millis(1),
            ..config()
        };
        let backend = Box::new(TdpmBackend::with_config(cfg.tdpm.clone()));
        let pipeline = Pipeline::start_with_behavior(db, cfg, behavior, backend).unwrap();

        let score_fn: Box<ScoreFn> = Box::new(|_, _, _| 1.0);
        let report = pipeline.run(&["btree page buffer index question"], &*score_fn);
        assert_eq!(report.garbage_answers, 1);
        assert_eq!(report.reassignments, 1);
        assert_eq!(report.answers_collected, 1, "standby's real answer");
        assert_eq!(report.abandonments, 0);
        pipeline.shutdown();
    }

    #[test]
    fn exhausted_standbys_abandon_the_task() {
        // Both workers stay silent: the initial assignee expires, the one
        // standby expires too, and the task is abandoned deterministically.
        let (db, _, _) = specialist_db();
        let behavior: Arc<BehaviorFn> = Arc::new(|_, _| WorkerReply::Silent);
        let cfg = PipelineConfig {
            answer_timeout: Duration::from_millis(60),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..config()
        };
        let backend = Box::new(TdpmBackend::with_config(cfg.tdpm.clone()));
        let pipeline = Pipeline::start_with_behavior(db, cfg, behavior, backend).unwrap();

        let score_fn: Box<ScoreFn> = Box::new(|_, _, _| 1.0);
        let report = pipeline.run(&["btree page buffer index question"], &*score_fn);
        assert_eq!(report.abandonments, 1);
        assert_eq!(report.timeouts, 1, "back-compat counter tracks abandonment");
        assert_eq!(report.expired_assignments, 2, "initial + one standby");
        assert_eq!(report.reassignments, 1, "only one standby existed");
        assert_eq!(report.answers_collected, 0);
        assert_eq!(report.feedback_applied, 0);
        pipeline.shutdown();
    }

    #[test]
    fn quorum_completes_before_all_answers() {
        let (db, _, _) = specialist_db();
        // Both specialists answer, but one is a hopeless straggler.
        let slow = WorkerId(1);
        let behavior: Arc<BehaviorFn> = Arc::new(move |w, d| {
            if w == slow {
                WorkerReply::Delayed(Duration::from_secs(2), format!("too late from {w}"))
            } else {
                WorkerReply::Answer(format!("quick answer to {} from {w}", d.task))
            }
        });
        let cfg = PipelineConfig {
            top_k: 2,
            quorum: Some(1),
            answer_timeout: Duration::from_millis(150),
            max_reassignments: 0,
            ..config()
        };
        let backend = Box::new(TdpmBackend::with_config(cfg.tdpm.clone()));
        let pipeline = Pipeline::start_with_behavior(db, cfg, behavior, backend).unwrap();

        let score_fn: Box<ScoreFn> = Box::new(|_, _, _| 1.0);
        let start = Instant::now();
        let report = pipeline.run(&["btree page buffer index question"], &*score_fn);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "quorum must not wait out the straggler"
        );
        assert_eq!(report.quorum_completions, 1);
        assert_eq!(report.abandonments, 0);
        assert_eq!(report.answers_collected, 1, "one valid answer sufficed");
        assert_eq!(report.feedback_applied, 1);
        pipeline.shutdown();
    }
}
