//! End-to-end pipeline: manager + dispatcher + simulated workers +
//! collector, on real threads.

use crate::collector::AnswerCollector;
use crate::dispatcher::{DispatchOutcome, TaskDispatcher};
use crate::events::{AnswerEvent, Dispatch, FeedbackEvent};
use crate::manager::{CrowdManager, ManagerConfig, ManagerError};
use crowd_core::{TdpmBackend, TdpmConfig};
use crowd_select::SelectorBackend;
use crowd_store::{CrowdDb, SharedCrowdDb, WorkerId};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a simulated worker answers a dispatched task.
pub type AnswerFn = dyn Fn(WorkerId, &Dispatch) -> String + Send + Sync;

/// How the (simulated) asker scores a returned answer.
pub type ScoreFn = dyn Fn(WorkerId, &Dispatch, &str) -> f64 + Send + Sync;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Workers selected per task.
    pub top_k: usize,
    /// Model hyper-parameters.
    pub tdpm: TdpmConfig,
    /// Upper bound on waiting for a task's answers before moving on.
    pub answer_timeout: Duration,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            top_k: 2,
            tdpm: TdpmConfig::default(),
            answer_timeout: Duration::from_secs(5),
        }
    }
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Tasks accepted by the manager.
    pub tasks_submitted: usize,
    /// Dispatches that reached a worker inbox.
    pub dispatches_delivered: usize,
    /// Answers persisted.
    pub answers_collected: usize,
    /// Feedback scores applied (db + incremental model update).
    pub feedback_applied: usize,
    /// Tasks that timed out waiting for answers.
    pub timeouts: usize,
    /// Event-level errors.
    pub errors: usize,
}

/// The wired-up system of Figure 1.
pub struct Pipeline {
    manager: Arc<CrowdManager>,
    dispatcher: Arc<TaskDispatcher>,
    collector: AnswerCollector,
    worker_threads: Vec<JoinHandle<()>>,
    workers: Vec<WorkerId>,
}

impl Pipeline {
    /// Builds the pipeline over an existing database, trains the initial
    /// TDPM model (red path) and spawns one thread per registered worker.
    pub fn start(
        db: CrowdDb,
        config: PipelineConfig,
        answer_fn: Arc<AnswerFn>,
    ) -> Result<Self, ManagerError> {
        let backend = Box::new(TdpmBackend::with_config(config.tdpm.clone()));
        Pipeline::start_with_backend(db, config, answer_fn, backend)
    }

    /// Like [`Pipeline::start`], but selecting with an arbitrary backend
    /// (e.g. `crowd_baselines::VsmBackend`) instead of TDPM.
    pub fn start_with_backend(
        db: CrowdDb,
        config: PipelineConfig,
        answer_fn: Arc<AnswerFn>,
        backend: Box<dyn SelectorBackend>,
    ) -> Result<Self, ManagerError> {
        let workers: Vec<WorkerId> = db.worker_ids().collect();
        let manager = Arc::new(CrowdManager::with_backend(
            SharedCrowdDb::new(db),
            ManagerConfig {
                top_k: config.top_k,
                tdpm: config.tdpm.clone(),
                retrain_every: None,
            },
            backend,
        ));
        manager.train()?;

        let dispatcher = Arc::new(TaskDispatcher::new());
        let collector = AnswerCollector::new();

        let mut worker_threads = Vec::with_capacity(workers.len());
        for &w in &workers {
            manager.set_online(w);
            let inbox = dispatcher.register(w);
            let answers = collector.answer_sender();
            let behave = Arc::clone(&answer_fn);
            worker_threads.push(std::thread::spawn(move || {
                // The worker loop: answer every dispatched task until the
                // dispatcher drops our inbox sender.
                while let Ok(dispatch) = inbox.recv() {
                    let text = behave(w, &dispatch);
                    if answers
                        .send(AnswerEvent {
                            worker: w,
                            task: dispatch.task,
                            text,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            }));
        }

        Ok(Pipeline {
            manager,
            dispatcher,
            collector,
            worker_threads,
            workers,
        })
    }

    /// The crowd manager (for inspection).
    pub fn manager(&self) -> &CrowdManager {
        &self.manager
    }

    /// Processes a stream of task texts: select → dispatch → collect →
    /// score → feedback, per task.
    pub fn run(&self, tasks: &[&str], score_fn: &ScoreFn) -> PipelineReport {
        let mut report = PipelineReport::default();
        for &text in tasks {
            let Ok((task, selected)) = self.manager.submit_task(text) else {
                report.errors += 1;
                continue;
            };
            report.tasks_submitted += 1;
            let dispatch = Dispatch {
                task,
                text: text.to_owned(),
            };
            let selected_ids: Vec<WorkerId> = selected.iter().map(|r| r.worker).collect();
            let outcomes = self.dispatcher.dispatch_all(&selected_ids, &dispatch);
            let delivered = outcomes
                .iter()
                .filter(|(_, o)| *o == DispatchOutcome::Delivered)
                .count();
            report.dispatches_delivered += delivered;

            // Wait for the workers' answers (they run on real threads).
            let deadline = Instant::now() + Duration::from_secs(5);
            while self.collector.pending_answers() < delivered && Instant::now() < deadline {
                std::thread::yield_now();
            }
            if self.collector.pending_answers() < delivered {
                report.timeouts += 1;
            }

            // Persist answers, then score them and apply feedback.
            let drained = self.collector.drain_into(&self.manager);
            report.answers_collected += drained.answers;
            report.errors += drained.errors;

            for &w in &selected_ids {
                let answer_text = self
                    .manager
                    .db()
                    .read()
                    .answer(w, task)
                    .map(|bag| format!("{} terms", bag.distinct_terms()))
                    .unwrap_or_default();
                let score = score_fn(w, &dispatch, &answer_text);
                let fb = FeedbackEvent {
                    worker: w,
                    task,
                    score,
                };
                let _ = self.collector.feedback_sender().send(fb);
            }
            let drained = self.collector.drain_into(&self.manager);
            report.feedback_applied += drained.feedback;
            report.errors += drained.errors;
        }
        report
    }

    /// Shuts down worker threads and returns the manager.
    pub fn shutdown(mut self) -> Arc<CrowdManager> {
        for &w in &self.workers {
            self.dispatcher.unregister(w);
        }
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
        Arc::clone(&self.manager)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specialist_db() -> (CrowdDb, WorkerId, WorkerId) {
        let mut db = CrowdDb::new();
        let dba = db.add_worker("dba");
        let stat = db.add_worker("stat");
        for i in 0..8 {
            let (text, good, bad) = if i % 2 == 0 {
                ("btree page split index buffer disk", dba, stat)
            } else {
                ("gaussian prior posterior likelihood variance", stat, dba)
            };
            let t = db.add_task(text);
            db.assign(good, t).unwrap();
            db.assign(bad, t).unwrap();
            db.record_feedback(good, t, 4.0).unwrap();
            db.record_feedback(bad, t, 0.5).unwrap();
        }
        (db, dba, stat)
    }

    fn config() -> PipelineConfig {
        PipelineConfig {
            top_k: 1,
            tdpm: TdpmConfig {
                num_categories: 2,
                max_em_iters: 15,
                seed: 7,
                ..TdpmConfig::default()
            },
            answer_timeout: Duration::from_secs(5),
        }
    }

    #[test]
    fn full_loop_processes_all_tasks() {
        let (db, dba, _) = specialist_db();
        let answer_fn: Arc<AnswerFn> = Arc::new(|w, d| format!("answer to {} from {w}", d.task));
        let pipeline = Pipeline::start(db, config(), answer_fn).unwrap();

        let tasks = vec![
            "btree page buffer question",
            "gaussian variance question",
            "btree index split question",
        ];
        let score_fn: Box<ScoreFn> = Box::new(|_, _, _| 1.0);
        let report = pipeline.run(&tasks, &*score_fn);

        assert_eq!(report.tasks_submitted, 3);
        assert_eq!(report.dispatches_delivered, 3, "top_k = 1 per task");
        assert_eq!(report.answers_collected, 3);
        assert_eq!(report.feedback_applied, 3);
        assert_eq!(report.timeouts, 0);
        assert_eq!(report.errors, 0);

        let manager = pipeline.shutdown();
        // The db task (first) should have gone to the DBA.
        let db = manager.db().read();
        let btree_task = crowd_store::TaskId((db.num_tasks() - 3) as u32);
        assert!(db.is_assigned(dba, btree_task));
        assert_eq!(db.feedback(dba, btree_task), Some(1.0));
    }

    #[test]
    fn shutdown_joins_worker_threads() {
        let (db, _, _) = specialist_db();
        let answer_fn: Arc<AnswerFn> = Arc::new(|_, _| "ok".into());
        let pipeline = Pipeline::start(db, config(), answer_fn).unwrap();
        let manager = pipeline.shutdown();
        assert!(manager.is_trained());
    }

    #[test]
    fn feedback_flows_into_model_updates() {
        let (db, dba, stat) = specialist_db();
        let answer_fn: Arc<AnswerFn> = Arc::new(|_, _| "useful answer text".into());
        let pipeline = Pipeline::start(db, config(), answer_fn).unwrap();

        let stats_text = "gaussian posterior variance prior";
        let before = pipeline
            .manager()
            .with_model(|m| {
                let bow = crowd_text::BagOfWords::from_tokens(
                    &crowd_text::tokenize_filtered(stats_text),
                    pipeline.manager().db().write().vocab_mut(),
                );
                let p = m.project_bow(&bow);
                m.score(stat, &p).unwrap()
            })
            .unwrap();

        // With top_k = 1 the stat expert wins the stats questions — and then
        // receives terrible feedback, which the incremental update must fold
        // back into their skill estimate.
        let score_fn: Box<ScoreFn> = Box::new(move |w, _, _| if w == dba { 8.0 } else { 0.1 });
        let stats_tasks: Vec<&str> = std::iter::repeat_n(stats_text, 8).collect();
        let report = pipeline.run(&stats_tasks, &*score_fn);
        assert_eq!(report.tasks_submitted, 8);
        assert_eq!(report.feedback_applied, 8);

        let manager = pipeline.shutdown();
        let after = manager
            .with_model(|m| {
                let bow = crowd_text::BagOfWords::from_tokens(
                    &crowd_text::tokenize_filtered(stats_text),
                    manager.db().write().vocab_mut(),
                );
                let p = m.project_bow(&bow);
                m.score(stat, &p).unwrap()
            })
            .unwrap();
        assert!(
            after < before - 0.3,
            "repeated 0.1-score feedback must erode the stat expert's \
             predicted performance: before {before}, after {after}"
        );
    }
}
