//! Query-language benchmarks: parsing cost and end-to-end `SELECT WORKERS`
//! execution against a fitted engine.

use criterion::{criterion_group, criterion_main, Criterion};
use crowd_query::{parse, QueryEngine};
use std::hint::black_box;

fn query_language(c: &mut Criterion) {
    c.bench_function("parse_select_full", |b| {
        let stmt = "SELECT WORKERS FOR TASK 'why does a btree split pages on insert' \
                    LIMIT 3 USING tdpm WHERE GROUP >= 5";
        b.iter(|| black_box(parse(stmt).unwrap()))
    });

    c.bench_function("parse_feedback", |b| {
        b.iter(|| black_box(parse("FEEDBACK WORKER 3 ON TASK 7 SCORE 4.5").unwrap()))
    });

    // End-to-end SELECT against a trained engine.
    let mut engine = QueryEngine::new();
    engine.run("INSERT WORKER 'dba'").unwrap();
    engine.run("INSERT WORKER 'stat'").unwrap();
    for i in 0..20 {
        let (text, good, bad) = if i % 2 == 0 {
            ("btree page split index buffer disk", 0, 1)
        } else {
            ("gaussian prior posterior likelihood variance", 1, 0)
        };
        engine.run(&format!("INSERT TASK '{text}'")).unwrap();
        engine
            .run(&format!("ASSIGN WORKER {good} TO TASK {i}"))
            .unwrap();
        engine
            .run(&format!("ASSIGN WORKER {bad} TO TASK {i}"))
            .unwrap();
        engine
            .run(&format!("FEEDBACK WORKER {good} ON TASK {i} SCORE 4"))
            .unwrap();
        engine
            .run(&format!("FEEDBACK WORKER {bad} ON TASK {i} SCORE 0.5"))
            .unwrap();
    }
    engine.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();

    c.bench_function("select_workers_tdpm_end_to_end", |b| {
        b.iter(|| {
            black_box(
                engine
                    .run("SELECT WORKERS FOR TASK 'btree page buffer' LIMIT 2")
                    .unwrap(),
            )
        })
    });

    c.bench_function("show_stats", |b| {
        b.iter(|| black_box(engine.run("SHOW STATS").unwrap()))
    });
}

criterion_group!(benches, query_language);
criterion_main!(benches);
