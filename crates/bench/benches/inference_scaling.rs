//! Ablation: cost of one variational EM fit as the workload grows
//! (tasks `N`, workers `M`, latent categories `K`).
//!
//! Motivated by DESIGN.md: the worker E-step is `O(M·K³ + |A|·K²)` and the
//! task E-step `O(N·(K² + CG))` — this bench checks the scaling empirically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_core::{TdpmConfig, TdpmTrainer, TrainingSet};
use crowd_sim::{PlatformGenerator, SimConfig};
use std::hint::black_box;

fn fit(ts: &TrainingSet, k: usize) {
    let cfg = TdpmConfig {
        num_categories: k,
        max_em_iters: 3,
        seed: 1,
        ..TdpmConfig::default()
    };
    let (model, _) = TdpmTrainer::new(cfg).fit_training_set(ts).unwrap();
    black_box(model);
}

fn inference_scaling(c: &mut Criterion) {
    // Vary the number of tasks at fixed K.
    let mut group = c.benchmark_group("inference_scaling_tasks");
    group.sample_size(10);
    for scale in [0.02, 0.04, 0.08] {
        let platform = PlatformGenerator::new(SimConfig::quora(scale, 7)).generate();
        let ts = TrainingSet::from_db(&platform.db);
        group.bench_with_input(BenchmarkId::from_parameter(ts.num_tasks()), &ts, |b, ts| {
            b.iter(|| fit(ts, 8))
        });
    }
    group.finish();

    // Vary K at a fixed workload.
    let platform = PlatformGenerator::new(SimConfig::quora(0.04, 7)).generate();
    let ts = TrainingSet::from_db(&platform.db);
    let mut group = c.benchmark_group("inference_scaling_categories");
    group.sample_size(10);
    for k in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| fit(&ts, k))
        });
    }
    group.finish();

    // Parallel task E-step: threads vs wall-clock on a larger workload.
    let platform = PlatformGenerator::new(SimConfig::quora(0.15, 7)).generate();
    let ts = TrainingSet::from_db(&platform.db);
    let mut group = c.benchmark_group("inference_parallel_estep");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let cfg = TdpmConfig {
                    num_categories: 10,
                    max_em_iters: 2,
                    seed: 1,
                    num_threads: threads,
                    ..TdpmConfig::default()
                };
                b.iter(|| {
                    let (model, _) = TdpmTrainer::new(cfg.clone()).fit_training_set(&ts).unwrap();
                    black_box(model)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, inference_scaling);
criterion_main!(benches);
