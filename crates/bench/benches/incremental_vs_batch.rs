//! Ablation: Algorithm 3's incremental path (project a new task + update
//! one worker's skill) versus refitting the whole model — the "Incremental
//! Crowd-Selection" motivation of Section 1.

use criterion::{criterion_group, criterion_main, Criterion};
use crowd_core::{TdpmConfig, TdpmTrainer, TrainingSet};
use crowd_sim::{PlatformGenerator, PlatformKind, SimConfig};
use std::hint::black_box;

fn incremental_vs_batch(c: &mut Criterion) {
    let platform = PlatformGenerator::new(SimConfig::quora(0.05, 21)).generate();
    let ts = TrainingSet::from_db(&platform.db);
    let cfg = TdpmConfig {
        num_categories: 10,
        max_em_iters: 5,
        seed: 2,
        ..TdpmConfig::default()
    };
    let (model, _) = TdpmTrainer::new(cfg.clone()).fit_training_set(&ts).unwrap();
    let words: Vec<(usize, u32)> = (0..12).map(|v| (v, 1u32)).collect();
    let worker = model.worker_ids()[0];

    let mut group = c.benchmark_group("incremental_vs_batch");
    group.sample_size(10);

    group.bench_function("project_new_task", |b| {
        b.iter(|| black_box(model.project_words(&words)))
    });

    group.bench_function("incremental_skill_update", |b| {
        let projection = model.project_words(&words);
        let mut m = model.clone();
        b.iter(|| {
            m.record_feedback(worker, &projection, 3.0).unwrap();
            black_box(m.skill(worker).unwrap().mean[0])
        })
    });

    group.bench_function("full_batch_refit", |b| {
        b.iter(|| {
            let (m, _) = TdpmTrainer::new(cfg.clone()).fit_training_set(&ts).unwrap();
            black_box(m)
        })
    });

    group.finish();
    let _ = PlatformKind::Quora;
}

criterion_group!(benches, incremental_vs_batch);
criterion_main!(benches);
