//! Micro-benchmarks of the math kernels the inference hot path relies on:
//! Cholesky factor+solve (worker update, Eq. 10), conjugate gradient (task
//! update, Eq. 14) and softmax (logistic link, Eq. 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_math::optimize::{minimize_cg, CgOptions};
use crowd_math::special::softmax;
use crowd_math::{Cholesky, Matrix, Vector};
use std::hint::black_box;

fn spd(n: usize) -> Matrix {
    let mut a = Matrix::identity(n);
    for i in 0..n {
        for j in 0..n {
            let v = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            a[(i, j)] += 0.5 * v;
        }
    }
    a.symmetrize();
    a
}

fn math_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_factor_solve");
    for n in [10usize, 20, 50] {
        let a = spd(n);
        let b = Vector::from_fn(n, |i| (i as f64).sin());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let chol = Cholesky::factor(&a).unwrap();
                black_box(chol.solve(&b).unwrap())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("conjugate_gradient_quadratic");
    for n in [10usize, 50] {
        let scales: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            let f = |x: &Vector, g: &mut Vector| {
                let mut v = 0.0;
                for i in 0..n {
                    let d = x[i] - 1.0;
                    v += 0.5 * scales[i] * d * d;
                    g[i] = scales[i] * d;
                }
                v
            };
            let x0 = Vector::zeros(n);
            let opts = CgOptions::default();
            bench.iter(|| black_box(minimize_cg(&f, &x0, &opts).value))
        });
    }
    group.finish();

    // The worker E-step resets a precision matrix and RHS to the prior for
    // every worker each EM iteration. Contrast the old per-worker clone with
    // the EStepScratch pattern: reuse one allocation via copy_from.
    let mut group = c.benchmark_group("estep_buffer_reset");
    for k in [10usize, 50] {
        let prior_prec = spd(k);
        let prior_rhs = Vector::from_fn(k, |i| (i as f64).cos());
        group.bench_with_input(BenchmarkId::new("clone", k), &k, |bench, _| {
            bench.iter(|| {
                let mut prec = prior_prec.clone();
                let mut rhs = prior_rhs.clone();
                prec[(0, 0)] += 1.0;
                rhs[0] += 1.0;
                black_box((prec, rhs))
            })
        });
        group.bench_with_input(BenchmarkId::new("copy_from", k), &k, |bench, _| {
            let mut prec = prior_prec.clone();
            let mut rhs = prior_rhs.clone();
            bench.iter(|| {
                prec.copy_from(&prior_prec).unwrap();
                rhs.copy_from(&prior_rhs).unwrap();
                prec[(0, 0)] += 1.0;
                rhs[0] += 1.0;
                black_box((&mut prec, &mut rhs));
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("softmax");
    for n in [10usize, 50, 200] {
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &xs, |bench, xs| {
            bench.iter(|| black_box(softmax(xs)))
        });
    }
    group.finish();
}

criterion_group!(benches, math_kernels);
criterion_main!(benches);
