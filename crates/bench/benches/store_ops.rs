//! Crowd-database micro-benchmarks: the insert/assign/feedback hot path,
//! group extraction (Figures 3/5/7 machinery) and snapshot round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_sim::{PlatformGenerator, SimConfig};
use crowd_store::snapshot::Snapshot;
use crowd_store::{CrowdDb, WorkerGroup};
use std::hint::black_box;

fn store_ops(c: &mut Criterion) {
    // Insert/assign/feedback pipeline throughput on an empty database.
    c.bench_function("store_insert_assign_feedback_x100", |b| {
        b.iter(|| {
            let mut db = CrowdDb::new();
            let workers: Vec<_> = (0..10).map(|i| db.add_worker(format!("w{i}"))).collect();
            for t in 0..100u32 {
                let task = db.add_task("some question text with a few words");
                let w = workers[(t as usize) % workers.len()];
                db.assign(w, task).unwrap();
                db.record_feedback(w, task, f64::from(t % 7)).unwrap();
            }
            black_box(db.num_resolved())
        })
    });

    // Group extraction + coverage on a realistic platform.
    let platform = PlatformGenerator::new(SimConfig::quora(0.2, 77)).generate();
    let mut group = c.benchmark_group("group_extraction");
    for threshold in [1usize, 5, 9] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &n| {
                b.iter(|| {
                    let g = WorkerGroup::extract(&platform.db, n);
                    black_box(g.coverage(&platform.db))
                })
            },
        );
    }
    group.finish();

    // Snapshot capture + restore round-trip.
    c.bench_function("snapshot_roundtrip", |b| {
        b.iter(|| {
            let snap = Snapshot::capture(&platform.db);
            let json = snap.to_json().unwrap();
            let restored = Snapshot::from_json(&json).unwrap().restore();
            black_box(restored.num_tasks())
        })
    });

    // The VSM profile build (worker history union) — the most merge-heavy
    // read path in the store.
    c.bench_function("worker_history_bow_all", |b| {
        b.iter(|| {
            let total: u64 = platform
                .db
                .worker_ids()
                .map(|w| platform.db.worker_history_bow(w).total_tokens())
                .sum();
            black_box(total)
        })
    });
}

criterion_group!(benches, store_ops);
criterion_main!(benches);
