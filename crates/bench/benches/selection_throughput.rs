//! Serving-path throughput: the dense `SkillMatrix` kernels against the
//! serial hash-walk baseline.
//!
//! Sweeps candidate-pool sizes {1k, 10k, 100k} × thread counts {1, 2, 4, 8}
//! for the chunk-parallel mean path (t > 1 runs on the persistent scoring
//! pool), plus the blocked batch kernel (B = 32 queries sharing one pool)
//! and the opt-in f32 serving mirror (single-query and batched).
//! `select_top_k_serial` — one hash lookup and one scattered `Vector::dot`
//! per candidate — is the preserved baseline every dense path is measured
//! (and bit-compared, in the property tests) against. The machine-readable
//! version of this sweep is the `selection_smoke` bin, which writes
//! `results/BENCH_8.json` in CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_bench::{synthetic_projections, synthetic_serving_model};
use crowd_store::WorkerId;
use std::hint::black_box;

const K: usize = 8;
const TOP_K: usize = 10;
const BATCH: usize = 32;

fn selection_throughput(c: &mut Criterion) {
    let model = synthetic_serving_model(100_000, K, 404);
    let projections = synthetic_projections(BATCH, K, 405);
    let query = &projections[0];

    for n in [1_000usize, 10_000, 100_000] {
        let candidates: Vec<WorkerId> = (0..n as u32).map(WorkerId).collect();
        let mut group = c.benchmark_group(format!("selection_throughput_{n}"));
        group.sample_size(10);

        group.bench_function("serial", |b| {
            b.iter(|| {
                black_box(model.select_top_k_serial(query, candidates.iter().copied(), TOP_K))
            })
        });
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new("dense", threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        black_box(model.select_top_k_with_threads(
                            query,
                            candidates.iter().copied(),
                            TOP_K,
                            threads,
                        ))
                    })
                },
            );
        }
        group.bench_function("f32_t1", |b| {
            b.iter(|| {
                black_box(model.select_top_k_f32_with_threads(
                    query,
                    candidates.iter().copied(),
                    TOP_K,
                    1,
                ))
            })
        });
        group.bench_function("batched_b32", |b| {
            b.iter(|| black_box(model.select_top_k_batch(&projections, &candidates, TOP_K)))
        });
        group.bench_function("batched_f32_b32", |b| {
            b.iter(|| black_box(model.select_top_k_f32_batch(&projections, &candidates, TOP_K)))
        });
        group.finish();
    }
}

criterion_group!(benches, selection_throughput);
criterion_main!(benches);
