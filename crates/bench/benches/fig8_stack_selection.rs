//! Figure 8: running time of Top-1 / Top-2 crowd-selection in Stack
//! Overflow, per algorithm and worker group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_bench::{bench_platform, fit_selectors, group_workloads, run_query};
use crowd_sim::PlatformKind;
use std::hint::black_box;

fn fig8(c: &mut Criterion) {
    let platform = bench_platform(PlatformKind::StackOverflow);
    let selectors = fit_selectors(&platform, 10);
    let workloads = group_workloads(&platform, &[1, 6, 12], 50);

    for k in [1usize, 2] {
        let mut group = c.benchmark_group(format!("fig8_stack_top{k}"));
        group.sample_size(20);
        for (threshold, questions) in &workloads {
            for selector in &selectors {
                group.bench_with_input(
                    BenchmarkId::new(selector.name(), format!("Stack{threshold}")),
                    questions,
                    |b, qs| {
                        let mut i = 0;
                        b.iter(|| {
                            let q = &qs[i % qs.len()];
                            i += 1;
                            black_box(run_query(selector.as_ref(), q, k))
                        })
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, fig8);
criterion_main!(benches);
