//! CI bench gate for the sharded fit — writes `results/BENCH_9.json`.
//!
//! Two tiers, both driven by the counter-based [`ScaleGenerator`] so every
//! run sees the identical platform:
//!
//! - **Speedup tier** (100k workers / 20k tasks / ~200k assignments): the
//!   same [`TrainingSet`] is fitted with `num_shards = 1` (fully inline)
//!   and `num_shards = 8` (per-shard E-step jobs on the persistent
//!   [`crowd_math::ScoringPool`], suff-stats reduced in shard-index
//!   order), both at `num_threads = 1` so the shard fan-out is the only
//!   variable. Because the sharded reduction uses the same fixed-block
//!   tree as the serial path, the two fits must also produce bit-identical
//!   ELBO traces — checked here as a gate, so the speedup can never be
//!   bought by drifting the arithmetic.
//! - **Memory tier** (1M workers / 1M tasks / ~10M assignments): the
//!   platform is materialized into an 8-shard [`ShardedDb`] and fitted for
//!   one EM epoch via [`TdpmTrainer::fit_sharded`]; the process peak RSS
//!   (`VmHWM`, via [`crowd_obs::peak_rss_bytes`]) must stay under
//!   [`GATE_PEAK_RSS_BYTES`] — the bounded-memory claim of DESIGN §11.
//!
//! **Measurement.** The speedup tier uses the min-statistic paired scheme
//! from `selection_smoke`: each round times both fits back to back and
//! each path keeps its fastest round; a gate miss folds up to
//! [`MAX_ATTEMPTS`] attempts into the same minima so shared-hardware noise
//! cannot flake the gate. The memory tier runs once — RSS is a
//! high-water mark, not a timing.
//!
//! **Gates** (checked at exit, nonzero on failure):
//!
//! 1. ELBO traces of the 1-shard and 8-shard fits are bitwise identical.
//! 2. Host-conditional speedup: with ≥ 4 pool workers the 8-shard fit
//!    must be ≥ [`GATE_MIN_SPEEDUP_MULTI`]× the 1-shard fit; with 2–3 it
//!    must merely win; on a single-core host real speedup is impossible,
//!    so the gate becomes a no-regression bound — pooled shard dispatch
//!    must cost ≤ [`GATE_SINGLE_CORE_SLACK`]× the inline fit.
//! 3. Peak RSS after the million-worker tier ≤ [`GATE_PEAK_RSS_BYTES`].

use crowd_core::dataset::TaskData;
use crowd_core::{TdpmConfig, TdpmTrainer, TrainingSet};
use crowd_math::ScoringPool;
use crowd_sim::{ScaleConfig, ScaleGenerator};
use crowd_store::ShardedDb;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const K: usize = 4;
const SHARDS: usize = 8;
/// Multi-core hosts (≥ 4 pool workers): minimum 8-shard vs 1-shard speedup.
const GATE_MIN_SPEEDUP_MULTI: f64 = 3.0;
/// Single-core hosts: max allowed `fit_s8 / fit_s1`. The pooled path's
/// per-chunk state round-trips measure ~5% over the inline fit when there
/// is no parallelism to buy; the bound adds headroom for shared-host
/// scheduler noise while staying an order of magnitude below the
/// regression mode it exists to catch (per-call thread spawns cost
/// several-fold here before the persistent pool).
const GATE_SINGLE_CORE_SLACK: f64 = 1.20;
/// Peak-RSS ceiling for the whole process after the million-worker tier.
const GATE_PEAK_RSS_BYTES: u64 = 8 * 1024 * 1024 * 1024;
/// Interleaved measurement rounds; the reported figure is the per-path min.
const ROUNDS: usize = 3;
/// Gate-miss retries; each folds new rounds into the accumulated minima.
const MAX_ATTEMPTS: usize = 3;

fn fit_config(num_shards: usize) -> TdpmConfig {
    TdpmConfig {
        num_categories: K,
        max_em_iters: 2,
        task_inner_iters: 1,
        cg_max_iters: 8,
        seed: 11,
        num_threads: 1,
        num_shards,
        ..TdpmConfig::default()
    }
}

/// Builds the speedup-tier training set straight from the counter scheme —
/// no store in the loop, so the measurement isolates the fit itself.
fn speedup_training_set(cfg: &ScaleConfig) -> TrainingSet {
    let g = ScaleGenerator::new(*cfg);
    let tasks: Vec<TaskData> = (0..cfg.num_tasks)
        .map(|j| TaskData {
            task: crowd_store::TaskId(u32::try_from(j).expect("task id fits u32")),
            words: vec![(g.task_term(j), 1)],
            num_tokens: 1.0,
            // Counter draws are already ascending by worker — the canonical
            // score order `TrainingSet` normalizes to.
            scores: g.assignments_of(j),
        })
        .collect();
    TrainingSet::from_parts(tasks, cfg.num_workers, cfg.vocab_size)
}

struct SpeedupCell {
    /// `(path name, fit ns)` in measurement order: `fit_s1`, `fit_s8`.
    paths: Vec<(&'static str, f64)>,
}

impl SpeedupCell {
    fn ns(&self, name: &str) -> f64 {
        self.paths
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ns)| *ns)
            .unwrap_or(f64::NAN)
    }

    fn speedup(&self) -> f64 {
        self.ns("fit_s1") / self.ns("fit_s8")
    }

    fn fold_min(&mut self, other: &SpeedupCell) {
        for ((name, ns), (other_name, other_ns)) in self.paths.iter_mut().zip(&other.paths) {
            assert_eq!(name, other_name);
            if *other_ns < *ns {
                *ns = *other_ns;
            }
        }
    }
}

/// Min-statistic, paired: every round fits both shard counts once, in
/// order, and each keeps its fastest round. The warm-up round also
/// first-touches the scoring pool so pool spin-up is not billed to `s8`.
fn measure_speedup(ts: &TrainingSet) -> SpeedupCell {
    let mut fit_s1 = || {
        black_box(
            TdpmTrainer::new(fit_config(1))
                .fit_training_set(ts)
                .expect("1-shard fit"),
        );
    };
    let mut fit_s8 = || {
        black_box(
            TdpmTrainer::new(fit_config(SHARDS))
                .fit_training_set(ts)
                .expect("8-shard fit"),
        );
    };
    let mut paths: Vec<(&'static str, &mut dyn FnMut())> =
        vec![("fit_s1", &mut fit_s1), ("fit_s8", &mut fit_s8)];

    for (_, f) in paths.iter_mut() {
        f();
    }
    let mut mins = vec![f64::INFINITY; paths.len()];
    for _ in 0..ROUNDS {
        for (i, (_, f)) in paths.iter_mut().enumerate() {
            let start = Instant::now();
            f();
            let ns = start.elapsed().as_nanos() as f64;
            if ns < mins[i] {
                mins[i] = ns;
            }
        }
    }
    SpeedupCell {
        paths: paths
            .iter()
            .zip(mins)
            .map(|((n, _), ns)| (*n, ns))
            .collect(),
    }
}

struct MemoryTier {
    num_assignments: usize,
    populate_ms: f64,
    fit_ms: f64,
    elbo: f64,
    peak_rss_bytes: Option<u64>,
}

/// Materializes the million-worker platform into an 8-shard store and runs
/// one EM epoch through the sharded entry point.
fn run_memory_tier(cfg: &ScaleConfig) -> MemoryTier {
    let g = ScaleGenerator::new(*cfg);
    let mut db = ShardedDb::new(SHARDS);
    let t0 = Instant::now();
    g.populate_sharded(&mut db).expect("populate sharded store");
    let populate_ms = t0.elapsed().as_secs_f64() * 1e3;
    let num_assignments = db.num_assignments();

    let config = TdpmConfig {
        max_em_iters: 1,
        ..fit_config(SHARDS)
    };
    let t1 = Instant::now();
    let (_model, report) = TdpmTrainer::new(config)
        .fit_sharded(&db)
        .expect("million-worker fit");
    let fit_ms = t1.elapsed().as_secs_f64() * 1e3;

    MemoryTier {
        num_assignments,
        populate_ms,
        fit_ms,
        elbo: report.elbo_trace.last().copied().unwrap_or(f64::NAN),
        peak_rss_bytes: crowd_obs::peak_rss_bytes(),
    }
}

/// Evaluate the host-conditional speedup gate; returns the failure
/// messages, empty when it passes.
fn speedup_gate_failures(cell: &SpeedupCell, pool_workers: usize) -> Vec<String> {
    let mut fails = Vec::new();
    let speedup = cell.speedup();
    let ratio = cell.ns("fit_s8") / cell.ns("fit_s1");
    if pool_workers >= 4 {
        if speedup < GATE_MIN_SPEEDUP_MULTI {
            fails.push(format!(
                "8-shard fit speedup is {speedup:.2}x on a {pool_workers}-worker pool, below \
                 the {GATE_MIN_SPEEDUP_MULTI}x gate"
            ));
        }
    } else if pool_workers > 1 {
        if speedup <= 1.0 {
            fails.push(format!(
                "8-shard fit is {ratio:.2}x the 1-shard fit on a {pool_workers}-worker pool \
                 (must win outright)"
            ));
        }
    } else if ratio > GATE_SINGLE_CORE_SLACK {
        fails.push(format!(
            "single-core host, but the 8-shard fit is {ratio:.2}x the 1-shard fit (bound \
             {GATE_SINGLE_CORE_SLACK}x): pooled shard dispatch overhead regressed"
        ));
    }
    fails
}

/// Evaluate the peak-RSS gate over the finished memory tier.
fn memory_gate_failures(memory: &MemoryTier) -> Vec<String> {
    let mut fails = Vec::new();
    match memory.peak_rss_bytes {
        Some(rss) if rss > GATE_PEAK_RSS_BYTES => fails.push(format!(
            "peak RSS {:.2} GiB exceeds the {:.0} GiB ceiling after the million-worker tier",
            rss as f64 / (1u64 << 30) as f64,
            GATE_PEAK_RSS_BYTES as f64 / (1u64 << 30) as f64,
        )),
        Some(_) => {}
        // VmHWM is Linux-only; absence (e.g. macOS dev box) skips the gate
        // rather than failing it — CI runs on Linux where it is always read.
        None => eprintln!("fit_smoke: VmHWM unavailable; peak-RSS gate skipped"),
    }
    fails
}

fn main() {
    let speedup_cfg = ScaleConfig::speedup_tier(909);
    let million_cfg = ScaleConfig::million_tier(909);
    let pool_workers = ScoringPool::global().workers();

    let ts = speedup_training_set(&speedup_cfg);
    println!(
        "fit_smoke: speedup tier — {} workers, {} tasks, {} scored pairs",
        ts.num_workers(),
        ts.num_tasks(),
        ts.num_scored_pairs()
    );

    // Bit-identity check once, outside the timing loop: the traces are a
    // complete fingerprint of the fit (every parameter feeds the ELBO).
    let (_, report_s1) = TdpmTrainer::new(fit_config(1))
        .fit_training_set(&ts)
        .expect("1-shard fit");
    let (_, report_s8) = TdpmTrainer::new(fit_config(SHARDS))
        .fit_training_set(&ts)
        .expect("8-shard fit");
    let traces_identical = report_s1.elbo_trace == report_s8.elbo_trace;
    println!(
        "fit_smoke: elbo traces {} (s1 last = {:?})",
        if traces_identical {
            "identical"
        } else {
            "DIVERGED"
        },
        report_s1.elbo_trace.last()
    );

    // The speedup tier is measured BEFORE the million-worker tier: the
    // memory tier leaves a multi-GiB fragmented heap behind, and timing the
    // pooled path's per-chunk copies on top of it biases the ratio by ~10%.
    let mut cell: Option<SpeedupCell> = None;
    let mut attempts = 0;
    let failures = loop {
        attempts += 1;
        let fresh = measure_speedup(&ts);
        match cell.as_mut() {
            Some(acc) => acc.fold_min(&fresh),
            None => cell = Some(fresh),
        }
        let c = cell.as_ref().unwrap();
        println!(
            "fit_smoke: fit_s1 {:>7.1} ms | fit_s8 {:>7.1} ms | speedup {:.2}x \
             (pool_workers={pool_workers})",
            c.ns("fit_s1") / 1e6,
            c.ns("fit_s8") / 1e6,
            c.speedup()
        );
        let fails = speedup_gate_failures(c, pool_workers);
        if fails.is_empty() || attempts >= MAX_ATTEMPTS {
            break fails;
        }
        eprintln!(
            "fit_smoke: gate miss on attempt {attempts}/{MAX_ATTEMPTS} — folding in another \
             {ROUNDS} rounds per path"
        );
    };

    println!(
        "fit_smoke: memory tier — {} workers, {} tasks into a {SHARDS}-shard store",
        million_cfg.num_workers, million_cfg.num_tasks
    );
    let memory = run_memory_tier(&million_cfg);
    println!(
        "fit_smoke: memory tier — {} assignments, populate {:.0} ms, fit {:.0} ms, peak RSS {}",
        memory.num_assignments,
        memory.populate_ms,
        memory.fit_ms,
        match memory.peak_rss_bytes {
            Some(b) => format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64),
            None => "unavailable".to_string(),
        }
    );

    let mut failures = failures;
    if !traces_identical {
        failures.push(
            "1-shard and 8-shard ELBO traces diverged — the sharded reduction is no longer \
             bit-identical to serial"
                .to_string(),
        );
    }
    failures.extend(memory_gate_failures(&memory));

    let cell = cell.expect("at least one attempt ran");
    let speedup = cell.speedup();
    let ratio = cell.ns("fit_s8") / cell.ns("fit_s1");
    let gate_mode = if pool_workers >= 4 {
        "s8_at_least_3x_s1"
    } else if pool_workers > 1 {
        "s8_faster_than_s1"
    } else {
        "single_core_no_regression"
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"sharded_fit_smoke\",\n");
    json.push_str("  \"statistic\": \"min_over_paired_rounds\",\n");
    let _ = writeln!(json, "  \"rounds_per_attempt\": {ROUNDS},");
    let _ = writeln!(json, "  \"attempts\": {attempts},");
    let _ = writeln!(json, "  \"k_categories\": {K},");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"pool_workers\": {pool_workers},");
    json.push_str("  \"speedup_tier\": {\n");
    let _ = writeln!(json, "    \"workers\": {},", speedup_cfg.num_workers);
    let _ = writeln!(json, "    \"tasks\": {},", speedup_cfg.num_tasks);
    let _ = writeln!(json, "    \"scored_pairs\": {},", ts.num_scored_pairs());
    let _ = writeln!(json, "    \"fit_s1_ns\": {:.0},", cell.ns("fit_s1"));
    let _ = writeln!(json, "    \"fit_s8_ns\": {:.0},", cell.ns("fit_s8"));
    let _ = writeln!(json, "    \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "    \"s8_vs_s1\": {ratio:.3},");
    let _ = writeln!(json, "    \"elbo_traces_identical\": {traces_identical}");
    json.push_str("  },\n");
    json.push_str("  \"memory_tier\": {\n");
    let _ = writeln!(json, "    \"workers\": {},", million_cfg.num_workers);
    let _ = writeln!(json, "    \"tasks\": {},", million_cfg.num_tasks);
    let _ = writeln!(json, "    \"assignments\": {},", memory.num_assignments);
    let _ = writeln!(json, "    \"populate_ms\": {:.0},", memory.populate_ms);
    let _ = writeln!(json, "    \"fit_ms\": {:.0},", memory.fit_ms);
    let _ = writeln!(json, "    \"elbo\": {},", memory.elbo);
    let _ = writeln!(
        json,
        "    \"peak_rss_bytes\": {},",
        match memory.peak_rss_bytes {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        }
    );
    let _ = writeln!(json, "    \"gate_peak_rss_bytes\": {GATE_PEAK_RSS_BYTES}");
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"gate_min_speedup_multi\": {GATE_MIN_SPEEDUP_MULTI},"
    );
    let _ = writeln!(
        json,
        "  \"gate_single_core_slack\": {GATE_SINGLE_CORE_SLACK},"
    );
    let _ = writeln!(json, "  \"gate_mode\": \"{gate_mode}\"");
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_9.json", &json).expect("write results/BENCH_9.json");
    println!("fit_smoke: wrote results/BENCH_9.json (gate mode: {gate_mode})");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("fit_smoke: FAIL — {f}");
        }
        std::process::exit(1);
    }
    println!(
        "fit_smoke: OK — s8/s1 {ratio:.2}x under the {gate_mode} gate, peak RSS {}",
        match memory.peak_rss_bytes {
            Some(b) => format!(
                "{:.2}/{:.0} GiB",
                b as f64 / (1u64 << 30) as f64,
                GATE_PEAK_RSS_BYTES as f64 / (1u64 << 30) as f64
            ),
            None => "unavailable".to_string(),
        }
    );
}
