//! CI bench gate for the dense serving path — writes `results/BENCH_4.json`.
//!
//! The Criterion targets under `benches/` are for interactive profiling;
//! this bin is the machine-readable smoke version that CI runs on every
//! push. It measures mean ns/query for each serving path over candidate
//! pools of {1k, 10k, 100k} workers:
//!
//! - `serial` — the preserved pre-dense baseline (`select_top_k_serial`):
//!   one hash lookup plus one scattered `Vector::dot` per candidate.
//! - `dense_t1` / `dense_t8` — the contiguous `SkillMatrix` walk at 1 and 8
//!   threads (`select_top_k_with_threads`).
//! - `batched_b32` — 32 queries sharing one pool through the blocked batch
//!   kernel (`select_top_k_batch`); the pool is resolved once and its cost
//!   amortized across the batch.
//!
//! The gate: at 100k candidates the batched path must be at least
//! [`GATE_MIN_SPEEDUP`]× faster per query than the serial baseline, or the
//! process exits nonzero and CI fails.

use crowd_bench::{synthetic_projections, synthetic_serving_model};
use crowd_core::{TaskProjection, TdpmModel};
use crowd_store::WorkerId;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const K: usize = 8;
const TOP_K: usize = 10;
const BATCH: usize = 32;
const POOL_SIZES: [usize; 3] = [1_000, 10_000, 100_000];
/// Minimum batched-vs-serial per-query speedup at the largest pool.
const GATE_MIN_SPEEDUP: f64 = 3.0;

/// Mean ns per call of `f`, after one warm-up call.
fn time_ns(reps: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(reps)
}

struct Cell {
    candidates: usize,
    serial: f64,
    dense_t1: f64,
    dense_t8: f64,
    batched_b32: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.serial / self.batched_b32
    }
}

fn measure(model: &TdpmModel, projections: &[TaskProjection], n: usize) -> Cell {
    let pool = u32::try_from(n).expect("pool size fits u32");
    let candidates: Vec<WorkerId> = (0..pool).map(WorkerId).collect();
    // Fewer reps on the big pools keeps the whole smoke run under a few
    // seconds; each rep already walks every candidate BATCH times.
    let reps: u32 = match n {
        0..=1_000 => 40,
        1_001..=10_000 => 10,
        _ => 3,
    };
    let per_query = |total: f64| total / BATCH as f64;

    let serial = per_query(time_ns(reps, || {
        for p in projections {
            black_box(model.select_top_k_serial(p, candidates.iter().copied(), TOP_K));
        }
    }));
    let dense_t1 = per_query(time_ns(reps, || {
        for p in projections {
            black_box(model.select_top_k_with_threads(p, candidates.iter().copied(), TOP_K, 1));
        }
    }));
    let dense_t8 = per_query(time_ns(reps, || {
        for p in projections {
            black_box(model.select_top_k_with_threads(p, candidates.iter().copied(), TOP_K, 8));
        }
    }));
    let batched_b32 = per_query(time_ns(reps, || {
        black_box(model.select_top_k_batch(projections, &candidates, TOP_K));
    }));

    Cell {
        candidates: n,
        serial,
        dense_t1,
        dense_t8,
        batched_b32,
    }
}

fn main() {
    let model = synthetic_serving_model(*POOL_SIZES.last().unwrap(), K, 404);
    let projections = synthetic_projections(BATCH, K, 405);

    let cells: Vec<Cell> = POOL_SIZES
        .iter()
        .map(|&n| {
            let cell = measure(&model, &projections, n);
            println!(
                "selection_smoke {n:>7} candidates: serial {:>10.0} ns/q | dense_t1 {:>10.0} | \
                 dense_t8 {:>10.0} | batched_b32 {:>10.0} | speedup {:.2}x",
                cell.serial,
                cell.dense_t1,
                cell.dense_t8,
                cell.batched_b32,
                cell.speedup()
            );
            cell
        })
        .collect();

    let gate_cell = cells.last().unwrap();
    let speedup_100k = gate_cell.speedup();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"selection_throughput_smoke\",\n");
    json.push_str("  \"unit\": \"ns_per_query\",\n");
    let _ = writeln!(json, "  \"k_categories\": {K},");
    let _ = writeln!(json, "  \"top_k\": {TOP_K},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"candidates\": {}, \"serial\": {:.1}, \"dense_t1\": {:.1}, \
             \"dense_t8\": {:.1}, \"batched_b32\": {:.1}, \
             \"speedup_batched_vs_serial\": {:.3}}}",
            c.candidates,
            c.serial,
            c.dense_t1,
            c.dense_t8,
            c.batched_b32,
            c.speedup()
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"gate_min_speedup\": {GATE_MIN_SPEEDUP},");
    let _ = writeln!(json, "  \"speedup_100k\": {speedup_100k:.3}");
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_4.json", &json).expect("write results/BENCH_4.json");
    println!("selection_smoke: wrote results/BENCH_4.json");

    if speedup_100k < GATE_MIN_SPEEDUP {
        eprintln!(
            "selection_smoke: FAIL — batched speedup at 100k candidates is \
             {speedup_100k:.2}x, below the {GATE_MIN_SPEEDUP}x gate"
        );
        std::process::exit(1);
    }
    println!(
        "selection_smoke: OK — batched speedup at 100k candidates is {speedup_100k:.2}x \
         (gate {GATE_MIN_SPEEDUP}x)"
    );
}
