//! CI bench gate for the dense serving path — writes `results/BENCH_8.json`.
//!
//! The Criterion targets under `benches/` are for interactive profiling;
//! this bin is the machine-readable smoke version that CI runs on every
//! push. It measures ns/query for each serving path over candidate pools
//! of {1k, 10k, 100k} workers:
//!
//! - `serial` — the preserved pre-dense baseline (`select_top_k_serial`):
//!   one hash lookup plus one scattered `Vector::dot` per candidate.
//! - `dense_t1/t2/t4/t8` — the contiguous `SkillMatrix` walk at 1–8
//!   threads (`select_top_k_with_threads`); t>1 runs on the persistent
//!   scoring pool (`crowd_math::ScoringPool`), not per-call spawns.
//! - `f32_t1` — the reduced-precision serving mirror at one thread.
//! - `batched_b32` / `batched_f32_b32` — 32 queries sharing one pool
//!   through the blocked batch kernels; the pool is resolved once and its
//!   cost amortized across the batch.
//!
//! **Measurement.** Every path is timed as the *minimum* over several
//! interleaved rounds (min-statistic, paired): the minimum is the least
//! noise-contaminated estimate of the true cost, and interleaving the
//! variants round-robin means drift (thermal, scheduler) hits all paths
//! alike instead of biasing whichever ran last. A gate miss triggers up to
//! [`MAX_ATTEMPTS`] passes whose rounds fold into the same minima, so a
//! transient slow window on shared CI hardware cannot flake the gate.
//!
//! **Gates** (checked at exit, nonzero on failure):
//!
//! 1. At 100k candidates the batched path must be at least
//!    [`GATE_MIN_SPEEDUP`]× faster per query than the serial baseline.
//! 2. Thread scaling, conditional on the host: when the persistent pool
//!    has more than one worker, `dense_t8` must beat `dense_t1` outright
//!    at 100k. On a single-core host real speedup is impossible, so the
//!    gate becomes a no-regression bound instead — pooled dispatch
//!    overhead must stay within [`GATE_SINGLE_CORE_SLACK_100K`] of the
//!    inline walk at 100k and [`GATE_SINGLE_CORE_SLACK_1K`] at 1k (the
//!    old per-call spawns regressed t8 several-fold here; the pool is the
//!    fix, and this bound keeps it fixed).

use crowd_bench::{synthetic_projections, synthetic_serving_model};
use crowd_core::{TaskProjection, TdpmModel};
use crowd_math::ScoringPool;
use crowd_store::WorkerId;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const K: usize = 8;
const TOP_K: usize = 10;
const BATCH: usize = 32;
const POOL_SIZES: [usize; 3] = [1_000, 10_000, 100_000];
/// Minimum batched-vs-serial per-query speedup at the largest pool.
const GATE_MIN_SPEEDUP: f64 = 10.0;
/// Single-core hosts: max allowed `dense_t8 / dense_t1` at 100k candidates.
const GATE_SINGLE_CORE_SLACK_100K: f64 = 1.05;
/// Single-core hosts: max allowed `dense_t8 / dense_t1` at 1k candidates
/// (small pools stay inline below the parallel cutoff, so this bounds the
/// policy check itself, not pool dispatch).
const GATE_SINGLE_CORE_SLACK_1K: f64 = 1.10;
/// Interleaved measurement rounds; the reported figure is the per-path min.
const ROUNDS: usize = 7;
/// Gate-miss retries: each retry re-measures every cell and folds the new
/// rounds into the accumulated per-path minimum, so a transient slow window
/// on shared hardware must span the whole run to fail the gate while a real
/// regression fails every attempt.
const MAX_ATTEMPTS: usize = 3;

/// ns for one call of `f` (the caller loops rounds and keeps the min).
fn once_ns(f: &mut dyn FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as f64
}

/// Min-statistic, paired: every round times each path once, in order, and
/// each path keeps its fastest round.
fn measure_paired(paths: &mut [(&'static str, &mut dyn FnMut())]) -> Vec<(&'static str, f64)> {
    // Warm-up: one untimed call each (also first-touches the scoring pool).
    for (_, f) in paths.iter_mut() {
        f();
    }
    let mut mins = vec![f64::INFINITY; paths.len()];
    for _ in 0..ROUNDS {
        for (i, (_, f)) in paths.iter_mut().enumerate() {
            let ns = once_ns(*f);
            if ns < mins[i] {
                mins[i] = ns;
            }
        }
    }
    paths
        .iter()
        .zip(mins)
        .map(|((name, _), ns)| (*name, ns))
        .collect()
}

struct Cell {
    candidates: usize,
    /// `(path name, ns per query)` in measurement order.
    paths: Vec<(&'static str, f64)>,
}

impl Cell {
    fn ns(&self, name: &str) -> f64 {
        self.paths
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ns)| *ns)
            .unwrap_or(f64::NAN)
    }

    fn speedup_batched_vs_serial(&self) -> f64 {
        self.ns("serial") / self.ns("batched_b32")
    }

    /// Fold another measurement of the same cell into this one, keeping the
    /// per-path minimum (paths are produced in a fixed order by `measure`).
    fn fold_min(&mut self, other: &Cell) {
        assert_eq!(self.candidates, other.candidates);
        for ((name, ns), (other_name, other_ns)) in self.paths.iter_mut().zip(&other.paths) {
            assert_eq!(name, other_name);
            if *other_ns < *ns {
                *ns = *other_ns;
            }
        }
    }
}

fn measure(model: &TdpmModel, projections: &[TaskProjection], n: usize) -> Cell {
    let pool = u32::try_from(n).expect("pool size fits u32");
    let candidates: Vec<WorkerId> = (0..pool).map(WorkerId).collect();
    let query = &projections[0];

    // Each closure is one *query* worth of work, so every figure below is
    // directly ns/query; the batched paths divide by the batch size.
    let mut serial = || {
        black_box(model.select_top_k_serial(query, candidates.iter().copied(), TOP_K));
    };
    let mut dense_t1 = || {
        black_box(model.select_top_k_with_threads(query, candidates.iter().copied(), TOP_K, 1));
    };
    let mut dense_t2 = || {
        black_box(model.select_top_k_with_threads(query, candidates.iter().copied(), TOP_K, 2));
    };
    let mut dense_t4 = || {
        black_box(model.select_top_k_with_threads(query, candidates.iter().copied(), TOP_K, 4));
    };
    let mut dense_t8 = || {
        black_box(model.select_top_k_with_threads(query, candidates.iter().copied(), TOP_K, 8));
    };
    let mut f32_t1 = || {
        black_box(model.select_top_k_f32_with_threads(query, candidates.iter().copied(), TOP_K, 1));
    };
    let mut batched = || {
        black_box(model.select_top_k_batch(projections, &candidates, TOP_K));
    };
    let mut batched_f32 = || {
        black_box(model.select_top_k_f32_batch(projections, &candidates, TOP_K));
    };

    let mut paths: Vec<(&'static str, &mut dyn FnMut())> = vec![
        ("serial", &mut serial),
        ("dense_t1", &mut dense_t1),
        ("dense_t2", &mut dense_t2),
        ("dense_t4", &mut dense_t4),
        ("dense_t8", &mut dense_t8),
        ("f32_t1", &mut f32_t1),
        ("batched_b32", &mut batched),
        ("batched_f32_b32", &mut batched_f32),
    ];
    let mut measured = measure_paired(&mut paths);
    for (name, ns) in &mut measured {
        if name.starts_with("batched") {
            *ns /= BATCH as f64;
        }
    }
    Cell {
        candidates: n,
        paths: measured,
    }
}

/// Evaluate every gate over the (possibly folded) cells; returns the
/// failure messages, empty when all gates pass.
fn gate_failures(cells: &[Cell], pool_workers: usize) -> Vec<String> {
    let cell_1k = &cells[0];
    let cell_100k = cells.last().unwrap();
    let speedup_100k = cell_100k.speedup_batched_vs_serial();
    let t8_vs_t1_100k = cell_100k.ns("dense_t8") / cell_100k.ns("dense_t1");
    let t8_vs_t1_1k = cell_1k.ns("dense_t8") / cell_1k.ns("dense_t1");

    let mut fails = Vec::new();
    if speedup_100k < GATE_MIN_SPEEDUP {
        fails.push(format!(
            "batched speedup at 100k candidates is {speedup_100k:.2}x, below the \
             {GATE_MIN_SPEEDUP}x gate"
        ));
    }
    if pool_workers > 1 {
        if t8_vs_t1_100k >= 1.0 {
            fails.push(format!(
                "dense_t8 is {t8_vs_t1_100k:.2}x dense_t1 at 100k candidates on a \
                 {pool_workers}-worker pool (must be < 1.0)"
            ));
        }
    } else {
        if t8_vs_t1_100k > GATE_SINGLE_CORE_SLACK_100K {
            fails.push(format!(
                "single-core host, but dense_t8 is {t8_vs_t1_100k:.2}x dense_t1 at 100k \
                 (bound {GATE_SINGLE_CORE_SLACK_100K}x): pool dispatch overhead regressed"
            ));
        }
        if t8_vs_t1_1k > GATE_SINGLE_CORE_SLACK_1K {
            fails.push(format!(
                "single-core host, but dense_t8 is {t8_vs_t1_1k:.2}x dense_t1 at 1k \
                 (bound {GATE_SINGLE_CORE_SLACK_1K}x): sub-cutoff selections must stay inline"
            ));
        }
    }
    fails
}

fn main() {
    let model = synthetic_serving_model(*POOL_SIZES.last().unwrap(), K, 404);
    let projections = synthetic_projections(BATCH, K, 405);
    let pool_workers = ScoringPool::global().workers();

    let mut cells: Vec<Cell> = Vec::new();
    let mut attempts = 0;
    let failures = loop {
        attempts += 1;
        for (i, &n) in POOL_SIZES.iter().enumerate() {
            let fresh = measure(&model, &projections, n);
            match cells.get_mut(i) {
                Some(acc) => acc.fold_min(&fresh),
                None => cells.push(fresh),
            }
            let cell = &cells[i];
            println!(
                "selection_smoke {n:>7} candidates: serial {:>9.0} ns/q | t1 {:>9.0} | t2 \
                 {:>9.0} | t4 {:>9.0} | t8 {:>9.0} | f32_t1 {:>9.0} | b32 {:>8.0} | f32_b32 \
                 {:>8.0} | batched speedup {:.2}x",
                cell.ns("serial"),
                cell.ns("dense_t1"),
                cell.ns("dense_t2"),
                cell.ns("dense_t4"),
                cell.ns("dense_t8"),
                cell.ns("f32_t1"),
                cell.ns("batched_b32"),
                cell.ns("batched_f32_b32"),
                cell.speedup_batched_vs_serial()
            );
        }
        let fails = gate_failures(&cells, pool_workers);
        if fails.is_empty() || attempts >= MAX_ATTEMPTS {
            break fails;
        }
        eprintln!(
            "selection_smoke: gate miss on attempt {attempts}/{MAX_ATTEMPTS} — folding in \
             another {ROUNDS} rounds per path"
        );
    };

    let cell_1k = &cells[0];
    let cell_100k = cells.last().unwrap();
    let speedup_100k = cell_100k.speedup_batched_vs_serial();
    let t8_vs_t1_100k = cell_100k.ns("dense_t8") / cell_100k.ns("dense_t1");
    let t8_vs_t1_1k = cell_1k.ns("dense_t8") / cell_1k.ns("dense_t1");
    let multi_core = pool_workers > 1;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"selection_throughput_smoke\",\n");
    json.push_str("  \"unit\": \"ns_per_query\",\n");
    json.push_str("  \"statistic\": \"min_over_paired_rounds\",\n");
    let _ = writeln!(json, "  \"rounds_per_attempt\": {ROUNDS},");
    let _ = writeln!(json, "  \"attempts\": {attempts},");
    let _ = writeln!(json, "  \"k_categories\": {K},");
    let _ = writeln!(json, "  \"top_k\": {TOP_K},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"pool_workers\": {pool_workers},");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(json, "    {{\"candidates\": {}", c.candidates);
        for (name, ns) in &c.paths {
            let _ = write!(json, ", \"{name}\": {ns:.1}");
        }
        let _ = write!(
            json,
            ", \"speedup_batched_vs_serial\": {:.3}}}",
            c.speedup_batched_vs_serial()
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"gate_min_speedup\": {GATE_MIN_SPEEDUP},");
    let _ = writeln!(json, "  \"speedup_100k\": {speedup_100k:.3},");
    let _ = writeln!(
        json,
        "  \"thread_gate\": \"{}\",",
        if multi_core {
            "t8_faster_than_t1_100k"
        } else {
            "single_core_no_regression"
        }
    );
    let _ = writeln!(json, "  \"t8_vs_t1_100k\": {t8_vs_t1_100k:.3},");
    let _ = writeln!(json, "  \"t8_vs_t1_1k\": {t8_vs_t1_1k:.3}");
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_8.json", &json).expect("write results/BENCH_8.json");
    println!("selection_smoke: wrote results/BENCH_8.json (pool_workers={pool_workers})");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("selection_smoke: FAIL — {f}");
        }
        std::process::exit(1);
    }
    println!(
        "selection_smoke: OK — batched speedup {speedup_100k:.2}x (gate {GATE_MIN_SPEEDUP}x), \
         t8/t1 {t8_vs_t1_100k:.2}x at 100k under the {} gate",
        if multi_core {
            "multi-core"
        } else {
            "single-core"
        }
    );
}
