#![warn(missing_docs)]

//! Shared setup for the Criterion benchmarks.
//!
//! Each `fig*` bench regenerates one of the paper's running-time figures
//! (Figures 4, 6, 8): mean latency of Top-k crowd-selection per worker
//! group, for all four algorithms. The remaining benches are ablations
//! motivated in DESIGN.md (inference scaling, incremental vs batch).

use crowd_baselines::{CrowdSelector, DrmSelector, TdpmSelector, TspmSelector, VsmSelector};
use crowd_core::{ModelParams, TaskProjection, TdpmConfig, TdpmModel};
use crowd_eval::protocol::{EvalProtocol, TestQuestion};
use crowd_math::Vector;
use crowd_sim::{GeneratedPlatform, PlatformGenerator, PlatformKind, SimConfig};
use crowd_store::{WorkerGroup, WorkerId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Benchmark-sized platform (small enough for Criterion's warm-ups).
pub fn bench_platform(kind: PlatformKind) -> GeneratedPlatform {
    let cfg = match kind {
        PlatformKind::Quora => SimConfig::quora(0.08, 404),
        PlatformKind::Yahoo => SimConfig::yahoo(0.08, 404),
        PlatformKind::StackOverflow => SimConfig::stack_overflow(0.08, 404),
    };
    PlatformGenerator::new(cfg).generate()
}

/// Fits the four selectors (VSM, TSPM, DRM, TDPM) with `k` categories.
///
/// # Panics
///
/// Panics if `platform` has no resolved tasks — generated bench platforms
/// always do, so hitting this means a broken generator config.
pub fn fit_selectors(platform: &GeneratedPlatform, k: usize) -> Vec<Box<dyn CrowdSelector>> {
    let db = &platform.db;
    vec![
        Box::new(VsmSelector::fit(db)),
        Box::new(TspmSelector::fit(db, k, 404)),
        Box::new(DrmSelector::fit(db, k, 404)),
        Box::new(TdpmSelector::fit(db, k, 404).expect("resolved tasks exist")),
    ]
}

/// Builds the per-group query workloads used by the selection benches.
pub fn group_workloads(
    platform: &GeneratedPlatform,
    thresholds: &[usize],
    questions_per_group: usize,
) -> Vec<(usize, Vec<TestQuestion>)> {
    let protocol = EvalProtocol::new(questions_per_group, 99);
    thresholds
        .iter()
        .map(|&n| {
            let group = WorkerGroup::extract(&platform.db, n);
            (n, protocol.test_questions(&platform.db, &group))
        })
        .filter(|(_, qs)| !qs.is_empty())
        .collect()
}

/// One full selection query: rank the candidates, keep the top-k.
pub fn run_query(selector: &dyn CrowdSelector, question: &TestQuestion, k: usize) -> usize {
    selector
        .select(&question.bow, &question.candidates, k)
        .len()
}

/// Assembles a servable TDPM model over `workers` synthetic posteriors with
/// `k` latent categories — the workload for the dense serving-path benches
/// (`selection_throughput` and the `selection_smoke` bin).
///
/// The posteriors are drawn directly (no EM fit), so worker counts far
/// beyond what the simulator generates are cheap; selection behaves exactly
/// as on a trained model with these posteriors. Worker ids are dense
/// `0..workers`, so a candidate pool of the first `n` ids hits only known
/// workers.
///
/// # Panics
///
/// Panics if `workers` exceeds the `u32` id space or if posterior shapes
/// disagree with `k` — impossible for the in-range arguments benches pass.
pub fn synthetic_serving_model(workers: usize, k: usize, seed: u64) -> TdpmModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let posteriors: Vec<(WorkerId, Vector, Vector)> = (0..workers)
        .map(|i| {
            let mean: Vec<f64> = (0..k).map(|_| rng.random_range(-2.0..2.0)).collect();
            let var: Vec<f64> = (0..k).map(|_| rng.random_range(0.05..1.0)).collect();
            (
                WorkerId(u32::try_from(i).expect("bench worker count fits u32")),
                Vector::from_vec(mean),
                Vector::from_vec(var),
            )
        })
        .collect();
    let cfg = TdpmConfig {
        num_categories: k,
        num_threads: 8,
        ..TdpmConfig::default()
    };
    TdpmModel::from_posteriors(ModelParams::neutral(k, 64), cfg, posteriors)
        .expect("synthetic posteriors match k")
}

/// Synthetic task projections over `k` categories for the serving benches
/// (zero task-side variance: the mean path ignores `ν²`).
pub fn synthetic_projections(n: usize, k: usize, seed: u64) -> Vec<TaskProjection> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| TaskProjection {
            lambda: Vector::from_vec((0..k).map(|_| rng.random_range(-1.5..1.5)).collect()),
            nu2: Vector::zeros(k),
            num_tokens: 1.0,
        })
        .collect()
}
