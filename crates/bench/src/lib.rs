#![warn(missing_docs)]

//! Shared setup for the Criterion benchmarks.
//!
//! Each `fig*` bench regenerates one of the paper's running-time figures
//! (Figures 4, 6, 8): mean latency of Top-k crowd-selection per worker
//! group, for all four algorithms. The remaining benches are ablations
//! motivated in DESIGN.md (inference scaling, incremental vs batch).

use crowd_baselines::{CrowdSelector, DrmSelector, TdpmSelector, TspmSelector, VsmSelector};
use crowd_eval::protocol::{EvalProtocol, TestQuestion};
use crowd_sim::{GeneratedPlatform, PlatformGenerator, PlatformKind, SimConfig};
use crowd_store::WorkerGroup;

/// Benchmark-sized platform (small enough for Criterion's warm-ups).
pub fn bench_platform(kind: PlatformKind) -> GeneratedPlatform {
    let cfg = match kind {
        PlatformKind::Quora => SimConfig::quora(0.08, 404),
        PlatformKind::Yahoo => SimConfig::yahoo(0.08, 404),
        PlatformKind::StackOverflow => SimConfig::stack_overflow(0.08, 404),
    };
    PlatformGenerator::new(cfg).generate()
}

/// Fits the four selectors (VSM, TSPM, DRM, TDPM) with `k` categories.
pub fn fit_selectors(platform: &GeneratedPlatform, k: usize) -> Vec<Box<dyn CrowdSelector>> {
    let db = &platform.db;
    vec![
        Box::new(VsmSelector::fit(db)),
        Box::new(TspmSelector::fit(db, k, 404)),
        Box::new(DrmSelector::fit(db, k, 404)),
        Box::new(TdpmSelector::fit(db, k, 404).expect("resolved tasks exist")),
    ]
}

/// Builds the per-group query workloads used by the selection benches.
pub fn group_workloads(
    platform: &GeneratedPlatform,
    thresholds: &[usize],
    questions_per_group: usize,
) -> Vec<(usize, Vec<TestQuestion>)> {
    let protocol = EvalProtocol::new(questions_per_group, 99);
    thresholds
        .iter()
        .map(|&n| {
            let group = WorkerGroup::extract(&platform.db, n);
            (n, protocol.test_questions(&platform.db, &group))
        })
        .filter(|(_, qs)| !qs.is_empty())
        .collect()
}

/// One full selection query: rank the candidates, keep the top-k.
pub fn run_query(selector: &dyn CrowdSelector, question: &TestQuestion, k: usize) -> usize {
    selector
        .select(&question.bow, &question.candidates, k)
        .len()
}
