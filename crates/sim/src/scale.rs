//! Counter-based platform generation for the million-worker tier.
//!
//! The planted-truth pipeline ([`crate::PlatformGenerator`]) draws every
//! task from one sequential RNG stream and simulates answer texts — ideal
//! for fidelity, wrong for scale: at 1M workers / 10M assignments the
//! point is to stress the *store and fit*, not the text model. This
//! generator replaces the stream with a counter-based scheme (splitmix64
//! of the entity index): any assignment is recomputable from its indices
//! alone in O(1), generation is a single pass with O(answers-per-task)
//! transient memory, and task text is one short token so the vocabulary —
//! and therefore `β` — stays a few dozen entries no matter how many tasks
//! exist. `fit_smoke` drives this into a [`ShardedDb`] to pin the
//! bounded-memory claim of DESIGN §11.

use crowd_store::{CrowdDb, Result, ShardedDb};

/// Shape of a counter-generated platform.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Registered workers `M`.
    pub num_workers: usize,
    /// Generated tasks `N`.
    pub num_tasks: usize,
    /// Mean scored assignments per task (exact count varies per task in
    /// `1..2·avg` by hash).
    pub avg_answers_per_task: usize,
    /// Distinct task terms; bounds the vocabulary and the `β` matrix.
    pub vocab_size: usize,
    /// Seed folded into every hash.
    pub seed: u64,
}

impl ScaleConfig {
    /// The BENCH_9 speedup tier: 100k workers, enough assignments to make
    /// the worker E-step the dominant phase.
    pub fn speedup_tier(seed: u64) -> Self {
        ScaleConfig {
            num_workers: 100_000,
            num_tasks: 20_000,
            avg_answers_per_task: 10,
            vocab_size: 32,
            seed,
        }
    }

    /// The BENCH_9 memory tier: 1M workers / ~10M assignments.
    pub fn million_tier(seed: u64) -> Self {
        ScaleConfig {
            num_workers: 1_000_000,
            num_tasks: 1_000_000,
            avg_answers_per_task: 10,
            vocab_size: 32,
            seed,
        }
    }
}

/// splitmix64 finalizer — the same mixer the sharded store's worker
/// placement uses; here it decorrelates per-index draws.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Counter-based generator: every draw is a pure function of
/// `(seed, task index, slot)`.
#[derive(Debug, Clone, Copy)]
pub struct ScaleGenerator {
    config: ScaleConfig,
}

impl ScaleGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(config: ScaleConfig) -> Self {
        assert!(config.num_workers > 0, "need at least one worker");
        assert!(config.num_tasks > 0, "need at least one task");
        assert!(config.avg_answers_per_task > 0, "need answers");
        assert!(config.vocab_size > 0, "need a vocabulary");
        ScaleGenerator { config }
    }

    /// The shape being generated.
    pub fn config(&self) -> &ScaleConfig {
        &self.config
    }

    /// The vocabulary index of task `j`'s single term. Callers that skip
    /// the store (e.g. `fit_smoke` building a `TrainingSet` directly) use
    /// this as the canonical term column; store-backed paths re-derive it
    /// by interning [`Self::task_text`], which permutes indexes but not
    /// content.
    pub fn task_term(&self, j: usize) -> usize {
        let h = mix(self.config.seed ^ mix(j as u64));
        (h % self.config.vocab_size as u64) as usize
    }

    /// The single-token text of task `j`.
    pub fn task_text(&self, j: usize) -> String {
        format!("term{}", self.task_term(j))
    }

    /// The scored assignments of task `j` as `(worker index, score)`,
    /// deduplicated, ascending by worker. O(answers) time and memory.
    pub fn assignments_of(&self, j: usize) -> Vec<(usize, f64)> {
        let cfg = &self.config;
        let base = mix(cfg.seed ^ mix(j as u64).rotate_left(17));
        let spread = (2 * cfg.avg_answers_per_task - 1) as u64;
        let count = 1 + (base % spread) as usize;
        let mut out: Vec<(usize, f64)> = (0..count)
            .map(|slot| {
                let h = mix(base ^ mix(slot as u64));
                let worker = (h % cfg.num_workers as u64) as usize;
                // Map 8 hash bits to a score in [0, 5) — enough resolution
                // for the fit to have real structure to chew on.
                let score = ((h >> 32) & 0xFF) as f64 * (5.0 / 256.0);
                (worker, score)
            })
            .collect();
        out.sort_by_key(|&(w, _)| w);
        out.dedup_by_key(|&mut (w, _)| w);
        out
    }

    /// Streams every `(task, worker, score)` triple to `f`, task-major.
    pub fn for_each_assignment(&self, mut f: impl FnMut(usize, usize, f64)) {
        for j in 0..self.config.num_tasks {
            for (w, s) in self.assignments_of(j) {
                f(j, w, s);
            }
        }
    }

    /// Materializes the platform into a sharded store: the roster, then
    /// one pass of tasks with their assignments and feedback. Transient
    /// memory beyond the store itself is O(answers-per-task).
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` exceeds the `u32` worker-id space.
    pub fn populate_sharded(&self, db: &mut ShardedDb) -> Result<()> {
        let cfg = &self.config;
        for i in 0..cfg.num_workers {
            db.add_worker(format!("w{i}"))?;
        }
        for j in 0..cfg.num_tasks {
            let task = db.add_task(self.task_text(j))?;
            for (w, s) in self.assignments_of(j) {
                let worker = crowd_store::WorkerId(u32::try_from(w).expect("worker id fits u32"));
                db.assign(worker, task)?;
                db.record_feedback(worker, task, s)?;
            }
        }
        Ok(())
    }

    /// Materializes the identical platform into an unsharded store —
    /// the oracle side of shard-invariance checks.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` exceeds the `u32` worker-id space.
    pub fn populate_db(&self, db: &mut CrowdDb) -> Result<()> {
        let cfg = &self.config;
        for i in 0..cfg.num_workers {
            db.add_worker(format!("w{i}"));
        }
        for j in 0..cfg.num_tasks {
            let task = db.add_task(self.task_text(j));
            for (w, s) in self.assignments_of(j) {
                let worker = crowd_store::WorkerId(u32::try_from(w).expect("worker id fits u32"));
                db.assign(worker, task)?;
                db.record_feedback(worker, task, s)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleGenerator {
        ScaleGenerator::new(ScaleConfig {
            num_workers: 300,
            num_tasks: 120,
            avg_answers_per_task: 5,
            vocab_size: 16,
            seed: 77,
        })
    }

    #[test]
    fn draws_are_pure_functions_of_indices() {
        let g = small();
        assert_eq!(g.assignments_of(17), g.assignments_of(17));
        assert_eq!(g.task_text(17), g.task_text(17));
        assert_ne!(g.assignments_of(17), g.assignments_of(18));
    }

    #[test]
    fn assignment_counts_hit_the_configured_mean() {
        let g = small();
        let mut total = 0usize;
        g.for_each_assignment(|_, _, _| total += 1);
        let avg = total as f64 / g.config().num_tasks as f64;
        // Mean of 1 + U{0..2·avg-2} is avg; dedup removes a little.
        assert!(
            (3.0..=7.0).contains(&avg),
            "average answers/task = {avg}, want ≈ 5"
        );
    }

    #[test]
    fn scores_are_valid_feedback() {
        let g = small();
        g.for_each_assignment(|_, w, s| {
            assert!(w < 300);
            assert!((0.0..5.0).contains(&s), "score {s}");
        });
    }

    #[test]
    fn sharded_and_unsharded_stores_hold_identical_content() {
        let g = small();
        let mut plain = CrowdDb::new();
        g.populate_db(&mut plain).unwrap();
        let mut sharded = ShardedDb::new(4);
        g.populate_sharded(&mut sharded).unwrap();

        assert_eq!(plain.num_workers(), sharded.num_workers());
        assert_eq!(plain.num_assignments(), sharded.num_assignments());
        let mut a = plain.resolved_tasks();
        let b = sharded.resolved_tasks();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter_mut().zip(&b) {
            assert_eq!(x.task, y.task);
            // ShardedDb sorts scores by worker; canonicalize the plain side.
            x.scores.sort_by_key(|&(w, _)| w);
            assert_eq!(x.scores, y.scores, "scores of {:?}", x.task);
        }
    }

    #[test]
    fn vocabulary_stays_bounded() {
        let g = small();
        let mut db = CrowdDb::new();
        g.populate_db(&mut db).unwrap();
        assert!(
            db.vocab().len() <= 16,
            "vocab {} exceeds the configured bound",
            db.vocab().len()
        );
    }
}
