//! Planted topic space: categories with Zipfian word distributions.

use crowd_math::special::normalize_in_place;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// A planted set of latent categories over a synthetic vocabulary.
///
/// Each category owns a block of "core" terms with Zipf-decaying weights and
/// leaks a small probability mass onto the full vocabulary (real categories
/// share function words). Term strings are `term0000`, `term0001`, … so
/// generated tasks can round-trip through the real tokenizer.
#[derive(Debug, Clone)]
pub struct TopicSpace {
    /// `word_dist[k][v] = p(v | category k)`, rows normalized.
    word_dist: Vec<Vec<f64>>,
    vocab: Vec<String>,
}

impl TopicSpace {
    /// Builds `num_categories` planted categories over `vocab_size` terms.
    ///
    /// `concentration ∈ (0, 1]` is the fraction of each category's mass on
    /// its own core block (0.9 → sharply separated categories).
    ///
    /// # Panics
    ///
    /// Panics when `num_categories` is zero or exceeds `vocab_size` — the
    /// planted-category construction needs at least one term per category.
    pub fn generate(
        num_categories: usize,
        vocab_size: usize,
        concentration: f64,
        seed: u64,
    ) -> Self {
        assert!(num_categories >= 1 && vocab_size >= num_categories);
        let mut rng = StdRng::seed_from_u64(seed);
        let block = vocab_size / num_categories;
        let mut word_dist = Vec::with_capacity(num_categories);
        for k in 0..num_categories {
            let mut row = vec![0.0; vocab_size];
            // Background mass: uniform with jitter.
            let bg = (1.0 - concentration) / vocab_size as f64;
            for w in row.iter_mut() {
                *w = bg * rng.random_range(0.5..1.5);
            }
            // Core block: Zipf-decaying weights over this category's terms.
            let start = k * block;
            let end = if k + 1 == num_categories {
                vocab_size
            } else {
                start + block
            };
            let mut core: Vec<f64> = (0..end - start)
                .map(|r| 1.0 / (1.0 + r as f64).powf(1.07))
                .collect();
            let core_sum: f64 = core.iter().sum();
            for c in core.iter_mut() {
                *c *= concentration / core_sum;
            }
            for (i, &c) in core.iter().enumerate() {
                row[start + i] += c;
            }
            normalize_in_place(&mut row);
            word_dist.push(row);
        }
        let vocab = (0..vocab_size).map(|v| format!("term{v:04}")).collect();
        TopicSpace { word_dist, vocab }
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.word_dist.len()
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The synthetic term strings, indexable by term id.
    pub fn vocab(&self) -> &[String] {
        &self.vocab
    }

    /// `p(v | category k)`.
    pub fn word_dist(&self, k: usize) -> &[f64] {
        &self.word_dist[k]
    }

    /// Samples one term id from a *mixture* of categories.
    pub fn sample_term(&self, mixture: &[f64], rng: &mut impl Rng) -> usize {
        let k = sample_index(mixture, rng);
        sample_index(&self.word_dist[k], rng)
    }

    /// Samples a sparse category mixture: one dominant category plus noise.
    ///
    /// Real Q&A questions are mostly single-topic; `dominance` is the mass on
    /// the primary category (e.g. 0.85).
    pub fn sample_mixture(&self, dominance: f64, rng: &mut impl Rng) -> Vec<f64> {
        let k = self.num_categories();
        let primary = rng.random_range(0..k);
        let mut m = vec![(1.0 - dominance) / k.max(1) as f64; k];
        m[primary] += dominance;
        normalize_in_place(&mut m);
        m
    }
}

/// Samples an index proportional to non-negative `weights`.
pub fn sample_index(weights: &[f64], rng: &mut impl Rng) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.random_range(0..weights.len().max(1));
    }
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_distributions() {
        let ts = TopicSpace::generate(4, 100, 0.9, 1);
        assert_eq!(ts.num_categories(), 4);
        assert_eq!(ts.vocab_size(), 100);
        for k in 0..4 {
            let s: f64 = ts.word_dist(k).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn categories_concentrate_on_their_blocks() {
        let ts = TopicSpace::generate(4, 100, 0.9, 2);
        for k in 0..4 {
            let block_mass: f64 = ts.word_dist(k)[k * 25..(k + 1) * 25].iter().sum();
            assert!(block_mass > 0.85, "category {k} block mass {block_mass}");
        }
    }

    #[test]
    fn sampled_terms_respect_category() {
        let ts = TopicSpace::generate(2, 50, 0.95, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mixture = vec![1.0, 0.0];
        let mut in_block = 0;
        for _ in 0..500 {
            if ts.sample_term(&mixture, &mut rng) < 25 {
                in_block += 1;
            }
        }
        assert!(in_block > 430, "{in_block}/500 in category-0 block");
    }

    #[test]
    fn mixtures_are_sparse_distributions() {
        let ts = TopicSpace::generate(5, 100, 0.9, 5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let m = ts.sample_mixture(0.85, &mut rng);
            let s: f64 = m.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            let max = m.iter().copied().fold(0.0, f64::max);
            assert!(max > 0.8, "dominant category mass {max}");
        }
    }

    #[test]
    fn vocab_strings_tokenize_cleanly() {
        let ts = TopicSpace::generate(2, 10, 0.9, 7);
        for term in ts.vocab() {
            let toks = crowd_text::tokenize(term);
            assert_eq!(toks.len(), 1);
            assert_eq!(&toks[0], term);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TopicSpace::generate(3, 60, 0.9, 9);
        let b = TopicSpace::generate(3, 60, 0.9, 9);
        assert_eq!(a.word_dist(0), b.word_dist(0));
    }
}
