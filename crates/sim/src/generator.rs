//! Materializes a synthetic platform into a [`CrowdDb`].

use crate::config::{PlatformKind, SimConfig};
use crate::topics::TopicSpace;
use crate::workers::WorkerPool;
use crowd_store::{CrowdDb, TaskId, WorkerId};
use crowd_text::similarity::jaccard;
use crowd_text::{BagOfWords, TermId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Normal, Poisson};

/// Tokens per simulated answer (Yahoo! Jaccard feedback path).
const ANSWER_TOKENS: usize = 28;
/// Steepness of the quality → on-topic-fidelity link for simulated answers.
/// Sharp enough that a non-best answer's Jaccard similarity to the best
/// answer actually tracks the answerer's quality — on real platforms good
/// answers resemble the best answer, poor ones drift off topic.
const FIDELITY_SLOPE: f64 = 2.0;
/// Quality at which answer fidelity crosses 50%.
const FIDELITY_MIDPOINT: f64 = 1.0;
/// Thumbs-up intensity: votes ~ Poisson(THUMBS_RATE · softplus(quality)).
const THUMBS_RATE: f64 = 1.5;

/// A fully generated platform: the observable database plus planted truth.
#[derive(Debug)]
pub struct GeneratedPlatform {
    /// The observable crowdsourcing database `(T, A, S)`.
    pub db: CrowdDb,
    /// The configuration that produced it.
    pub config: SimConfig,
    /// Planted worker skills (`true_skills[i][k]`).
    pub true_skills: Vec<Vec<f64>>,
    /// Planted per-task category mixtures.
    pub true_mixtures: Vec<Vec<f64>>,
}

/// Converts a dense vocabulary index into a [`TermId`].
fn dense_term_id(v: usize) -> TermId {
    debug_assert!(u32::try_from(v).is_ok(), "term id space exhausted");
    // crowd-lint: allow(no-silent-truncation) -- single audited choke point; simulated vocabularies are bounded by SimConfig::vocab_size, far below 2^32
    TermId(v as u32)
}

/// One answered slot of a streamed task: the answerer's pool index, the
/// platform feedback score, and (Yahoo! only) the simulated answer bag.
#[derive(Debug, Clone)]
pub struct AnswerEvent {
    /// Dense pool index of the answering worker.
    pub worker: usize,
    /// Platform feedback score `s_ij` (thumbs count or Jaccard similarity).
    pub score: f64,
    /// Simulated answer text bag, where the platform records answers.
    pub answer: Option<BagOfWords>,
}

/// One fully-drawn task from [`PlatformGenerator::stream_assignments`]:
/// everything a store needs to materialize the task, its assignments and
/// its feedback, with no reference back to the stream.
#[derive(Debug, Clone)]
pub struct TaskEvent {
    /// Task text (tokens joined in draw order).
    pub text: String,
    /// Bag of words over the dense topic vocabulary (term index == TermId).
    pub bow: BagOfWords,
    /// Planted category mixture (ground truth for evaluation).
    pub mixture: Vec<f64>,
    /// Answerers in platform order, each with its feedback score.
    pub answers: Vec<AnswerEvent>,
}

/// Streaming assignment generation: one [`TaskEvent`] per `next()`, drawn
/// from the identical RNG sequence the eager pipeline uses — so consuming
/// the stream into a store reproduces [`PlatformGenerator::generate`]
/// byte for byte (pinned by `stream_matches_eager_generation`). Memory is
/// O(one task), which is what lets the million-worker tier run without
/// materializing a [`GeneratedPlatform`].
#[derive(Debug)]
pub struct AssignmentStream<'a> {
    config: &'a SimConfig,
    topics: &'a TopicSpace,
    pool: &'a WorkerPool,
    rng: StdRng,
    token_dist: Poisson,
    answer_dist: Poisson,
    noise: Normal,
    remaining: usize,
}

impl AssignmentStream<'_> {
    fn draw_task(&mut self) -> TaskEvent {
        let cfg = self.config;
        let mixture = self.topics.sample_mixture(0.85, &mut self.rng);
        let num_tokens = (self.token_dist.sample(&mut self.rng) as usize).max(3);
        let (text, bow) = draw_task_content(self.topics, &mixture, num_tokens, &mut self.rng);

        let num_answerers =
            (self.answer_dist.sample(&mut self.rng) as usize + 1).min(cfg.num_workers);
        let answerers = self.pool.sample_answerers(
            &mixture,
            num_answerers,
            cfg.affinity_strength,
            &mut self.rng,
        );

        // True qualities with observation noise.
        let qualities: Vec<f64> = answerers
            .iter()
            .map(|&i| self.pool.quality(i, &mixture) + self.noise.sample(&mut self.rng))
            .collect();

        let answers = match cfg.kind {
            PlatformKind::Quora | PlatformKind::StackOverflow => {
                draw_thumbs_feedback(&answerers, &qualities, &mut self.rng)
            }
            PlatformKind::Yahoo => draw_best_answer_feedback(
                self.topics,
                &mixture,
                &answerers,
                &qualities,
                &mut self.rng,
            ),
        };
        TaskEvent {
            text,
            bow,
            mixture,
            answers,
        }
    }
}

impl Iterator for AssignmentStream<'_> {
    type Item = TaskEvent;

    fn next(&mut self) -> Option<TaskEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.draw_task())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for AssignmentStream<'_> {}

/// Generates platforms from [`SimConfig`]s.
#[derive(Debug, Clone)]
pub struct PlatformGenerator {
    config: SimConfig,
}

impl PlatformGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`SimConfig`] (programmer error) — validate
    /// user-supplied configs with [`SimConfig::validate`] first.
    pub fn new(config: SimConfig) -> Self {
        config.validate().expect("invalid SimConfig");
        PlatformGenerator { config }
    }

    /// The planted topic space this generator's seed implies.
    pub fn topic_space(&self) -> TopicSpace {
        let cfg = &self.config;
        TopicSpace::generate(
            cfg.num_categories,
            cfg.vocab_size,
            0.9,
            cfg.seed ^ 0xA5A5_5A5A,
        )
    }

    /// The planted worker pool this generator's seed implies.
    pub fn worker_pool(&self) -> WorkerPool {
        let cfg = &self.config;
        WorkerPool::generate(
            cfg.num_workers,
            cfg.num_categories,
            cfg.activity_exponent,
            cfg.seed ^ 0x0F0F_F0F0,
        )
    }

    /// Streams the platform one task at a time (chunked generation).
    ///
    /// The stream draws from the identical seeded RNG sequence as
    /// [`PlatformGenerator::generate`], so feeding its events into a store
    /// in order rebuilds the exact same platform; unlike `generate` it
    /// retains nothing between tasks. `topics` and `pool` come from
    /// [`PlatformGenerator::topic_space`] / [`PlatformGenerator::worker_pool`]
    /// (kept caller-owned so one pair can serve several streams).
    ///
    /// # Panics
    ///
    /// Panics if the configured token/answer rates are not valid Poisson
    /// parameters (zero or negative) — the same bounds `generate` requires.
    pub fn stream_assignments<'a>(
        &'a self,
        topics: &'a TopicSpace,
        pool: &'a WorkerPool,
    ) -> AssignmentStream<'a> {
        let cfg = &self.config;
        AssignmentStream {
            config: cfg,
            topics,
            pool,
            rng: StdRng::seed_from_u64(cfg.seed),
            token_dist: Poisson::new(cfg.tokens_per_task).expect("positive mean"),
            answer_dist: Poisson::new((cfg.avg_answers_per_task - 1.0).max(0.05))
                .expect("positive mean"),
            noise: Normal::new(0.0, cfg.quality_noise.max(1e-9)).expect("valid parameters"),
            remaining: cfg.num_tasks,
        }
    }

    /// Runs the full generation pipeline by consuming
    /// [`PlatformGenerator::stream_assignments`] into a fresh [`CrowdDb`].
    ///
    /// # Panics
    ///
    /// Panics if internal id or shape invariants break (dense vocab/term
    /// ids always fit `u32`; the config was validated in [`Self::new`]).
    pub fn generate(&self) -> GeneratedPlatform {
        let cfg = &self.config;
        let topics = self.topic_space();
        let pool = self.worker_pool();

        let mut db = CrowdDb::new();
        // Intern the full vocabulary up front so term index == TermId.
        for term in topics.vocab() {
            db.vocab_mut().intern(term);
        }
        let workers: Vec<WorkerId> = (0..cfg.num_workers)
            .map(|i| db.add_worker(format!("worker{i:05}")))
            .collect();

        let mut true_mixtures = Vec::with_capacity(cfg.num_tasks);
        for event in self.stream_assignments(&topics, &pool) {
            apply_task_event(&mut db, &workers, &event);
            true_mixtures.push(event.mixture);
        }

        let true_skills = (0..cfg.num_workers)
            .map(|i| pool.skill(i).to_vec())
            .collect();
        GeneratedPlatform {
            db,
            config: self.config.clone(),
            true_skills,
            true_mixtures,
        }
    }
}

/// Materializes one streamed task into a [`CrowdDb`]: the task row, every
/// assignment, then answers + feedback in platform order.
///
/// # Panics
///
/// Panics if an event references a worker outside `workers` or replays an
/// assignment the store already holds — both impossible for events drawn
/// from the stream that `workers` was registered for.
pub fn apply_task_event(db: &mut CrowdDb, workers: &[WorkerId], event: &TaskEvent) -> TaskId {
    let task_id = db.add_task_raw(event.text.clone(), event.bow.clone());
    for a in &event.answers {
        db.assign(workers[a.worker], task_id)
            .expect("fresh assignment");
    }
    for a in &event.answers {
        if let Some(bag) = &a.answer {
            db.record_answer_bow(workers[a.worker], task_id, bag.clone())
                .expect("assigned");
        }
        db.record_feedback(workers[a.worker], task_id, a.score)
            .expect("assigned");
    }
    task_id
}

/// Draws a task's token sequence: text in draw order plus its bag of words.
fn draw_task_content(
    topics: &TopicSpace,
    mixture: &[f64],
    num_tokens: usize,
    rng: &mut StdRng,
) -> (String, BagOfWords) {
    let mut counts = vec![0u32; topics.vocab_size()];
    let mut token_order = Vec::with_capacity(num_tokens);
    for _ in 0..num_tokens {
        let v = topics.sample_term(mixture, rng);
        counts[v] += 1;
        token_order.push(v);
    }
    let text = token_order
        .iter()
        .map(|&v| topics.vocab()[v].as_str())
        .collect::<Vec<_>>()
        .join(" ");
    let bow = BagOfWords::from_counts(
        counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(v, &c)| (dense_term_id(v), c))
            .collect(),
    );
    (text, bow)
}

/// Quora / Stack Overflow: thumbs-up counts, Poisson around a softplus of
/// the answer quality (good answers attract votes, bad ones get none).
fn draw_thumbs_feedback(
    answerers: &[usize],
    qualities: &[f64],
    rng: &mut StdRng,
) -> Vec<AnswerEvent> {
    answerers
        .iter()
        .zip(qualities)
        .map(|(&i, &q)| {
            let rate = THUMBS_RATE * softplus(q);
            let votes = if rate > 0.0 {
                Poisson::new(rate).map(|d| d.sample(rng)).unwrap_or(0.0)
            } else {
                0.0
            };
            AnswerEvent {
                worker: i,
                score: votes,
                answer: None,
            }
        })
        .collect()
}

/// Yahoo! Answers: the asker marks the highest-quality answer as best
/// (score 1.0); every other answer scores its Jaccard similarity to the
/// best answer (paper Section 4.1.5).
fn draw_best_answer_feedback(
    topics: &TopicSpace,
    mixture: &[f64],
    answerers: &[usize],
    qualities: &[f64],
    rng: &mut StdRng,
) -> Vec<AnswerEvent> {
    // Simulate answer texts: high-quality answers stay on topic, low
    // quality answers drift to random vocabulary.
    let answer_bags: Vec<BagOfWords> = qualities
        .iter()
        .map(|&q| {
            let fidelity = sigmoid(FIDELITY_SLOPE * (q - FIDELITY_MIDPOINT));
            let mut counts = vec![0u32; topics.vocab_size()];
            for _ in 0..ANSWER_TOKENS {
                let v = if rng.random::<f64>() < fidelity {
                    topics.sample_term(mixture, rng)
                } else {
                    rng.random_range(0..topics.vocab_size())
                };
                counts[v] += 1;
            }
            BagOfWords::from_counts(
                counts
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(v, &c)| (dense_term_id(v), c))
                    .collect(),
            )
        })
        .collect();

    let best = qualities
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(slot, _)| slot)
        .expect("at least one answerer");

    answerers
        .iter()
        .enumerate()
        .map(|(slot, &i)| {
            let score = if slot == best {
                1.0
            } else {
                jaccard(&answer_bags[slot], &answer_bags[best])
            };
            AnswerEvent {
                worker: i,
                score,
                answer: Some(answer_bags[slot].clone()),
            }
        })
        .collect()
}

impl GeneratedPlatform {
    /// The "right worker" for a resolved task: the answerer with the highest
    /// recorded feedback (best answerer), ties toward the smaller id —
    /// exactly the ground truth the paper's ACCU / TopK metrics use
    /// (Section 7.2.2).
    pub fn right_worker(&self, task: TaskId) -> Option<WorkerId> {
        self.db
            .workers_of(task)
            .filter_map(|(w, s)| s.map(|s| (w, s)))
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(w, _)| w)
    }

    /// Table-2-style statistics: `(questions, users, answers)`.
    pub fn stats(&self) -> (usize, usize, usize) {
        (
            self.db.num_tasks(),
            self.db.num_workers(),
            self.db.num_assignments(),
        )
    }
}

fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else {
        (1.0 + x.exp()).ln()
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;

    fn tiny(kind: fn(f64, u64) -> SimConfig) -> GeneratedPlatform {
        PlatformGenerator::new(kind(0.05, 9)).generate()
    }

    #[test]
    fn quora_platform_has_expected_shape() {
        let p = tiny(SimConfig::quora);
        let (q, u, a) = p.stats();
        assert_eq!(q, p.config.num_tasks);
        assert_eq!(u, p.config.num_workers);
        assert!(a >= q, "every task has ≥ 1 answer");
        assert_eq!(p.db.num_resolved(), a, "all assignments scored");
        assert_eq!(p.true_skills.len(), u);
        assert_eq!(p.true_mixtures.len(), q);
    }

    #[test]
    fn thumbs_scores_are_nonnegative_counts() {
        let p = tiny(SimConfig::quora);
        for rt in p.db.resolved_tasks() {
            for &(_, s) in &rt.scores {
                assert!(s >= 0.0 && s == s.trunc(), "vote count, got {s}");
            }
        }
    }

    #[test]
    fn yahoo_scores_are_best_answer_jaccard() {
        let p = tiny(SimConfig::yahoo);
        for rt in p.db.resolved_tasks() {
            let max = rt.scores.iter().map(|&(_, s)| s).fold(f64::MIN, f64::max);
            assert!((max - 1.0).abs() < 1e-12, "best answer scores 1.0");
            for &(w, s) in &rt.scores {
                assert!((0.0..=1.0).contains(&s));
                // Every scored answer stored its answer text bag.
                assert!(p.db.answer(w, rt.task).is_some());
            }
        }
    }

    #[test]
    fn right_worker_has_max_feedback() {
        let p = tiny(SimConfig::stack_overflow);
        let rts = p.db.resolved_tasks();
        let rt = &rts[0];
        let right = p.right_worker(rt.task).unwrap();
        let max = rt.scores.iter().map(|&(_, s)| s).fold(f64::MIN, f64::max);
        let right_score = rt.scores.iter().find(|&&(w, _)| w == right).unwrap().1;
        assert_eq!(right_score, max);
    }

    #[test]
    fn better_workers_get_better_feedback_on_average() {
        let p = tiny(SimConfig::quora);
        // Correlate planted quality with recorded feedback across all pairs.
        let mut quality = Vec::new();
        let mut feedback = Vec::new();
        for (j, rt) in p.db.resolved_tasks().iter().enumerate() {
            let mixture = &p.true_mixtures[j];
            for &(w, s) in &rt.scores {
                let planted: f64 = p.true_skills[w.index()]
                    .iter()
                    .zip(mixture)
                    .map(|(a, b)| a * b)
                    .sum();
                quality.push(planted);
                feedback.push(s);
            }
        }
        let corr = crowd_math::stats::pearson(&quality, &feedback).unwrap();
        assert!(corr > 0.3, "feedback tracks planted quality: r = {corr}");
    }

    #[test]
    fn participation_is_heavy_tailed() {
        let p = tiny(SimConfig::yahoo);
        let mut counts: Vec<usize> =
            p.db.worker_ids()
                .map(|w| p.db.worker_task_count(w))
                .collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let head: usize = counts[..counts.len() / 10].iter().sum();
        let total: usize = counts.iter().sum();
        assert!(
            head * 3 > total,
            "top 10% of workers answer > a third of the questions ({head}/{total})"
        );
        // And the most active worker dwarfs the median one.
        assert!(counts[0] >= 4 * counts[counts.len() / 2].max(1));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PlatformGenerator::new(SimConfig::quora(0.03, 5)).generate();
        let b = PlatformGenerator::new(SimConfig::quora(0.03, 5)).generate();
        assert_eq!(a.stats(), b.stats());
        let ta = a.db.task(TaskId(0)).unwrap();
        let tb = b.db.task(TaskId(0)).unwrap();
        assert_eq!(ta.text, tb.text);
    }

    /// Consuming the public stream into a fresh store must rebuild exactly
    /// what the eager pipeline produces — same seeds, byte for byte. This
    /// pins the contract that [`TaskEvent`]s carry *all* platform state, so
    /// the million-worker tier can stream into a sharded store without a
    /// [`GeneratedPlatform`] ever existing.
    #[test]
    fn stream_matches_eager_generation() {
        for cfg in [SimConfig::quora(0.04, 11), SimConfig::yahoo(0.04, 11)] {
            let generator = PlatformGenerator::new(cfg);
            let eager = generator.generate();

            let topics = generator.topic_space();
            let pool = generator.worker_pool();
            let mut db = CrowdDb::new();
            for term in topics.vocab() {
                db.vocab_mut().intern(term);
            }
            let workers: Vec<WorkerId> = (0..eager.config.num_workers)
                .map(|i| db.add_worker(format!("worker{i:05}")))
                .collect();
            let stream = generator.stream_assignments(&topics, &pool);
            assert_eq!(stream.len(), eager.config.num_tasks);
            for event in stream {
                apply_task_event(&mut db, &workers, &event);
            }

            assert_eq!(db.num_tasks(), eager.db.num_tasks());
            assert_eq!(db.num_assignments(), eager.db.num_assignments());
            assert_eq!(db.num_resolved(), eager.db.num_resolved());
            for t in db.task_ids() {
                assert_eq!(db.task(t).unwrap().text, eager.db.task(t).unwrap().text);
                let got: Vec<_> = db.workers_of(t).collect();
                let want: Vec<_> = eager.db.workers_of(t).collect();
                assert_eq!(got, want, "assignments + scores of {t:?}");
                for (w, _) in got {
                    assert_eq!(db.answer(w, t), eager.db.answer(w, t));
                }
            }
        }
    }

    #[test]
    fn task_text_roundtrips_through_vocab() {
        let p = tiny(SimConfig::quora);
        let t = p.db.task(TaskId(0)).unwrap();
        // Every token in the text is in the vocabulary.
        for tok in crowd_text::tokenize(&t.text) {
            assert!(p.db.vocab().get(&tok).is_some(), "token {tok} interned");
        }
    }
}
