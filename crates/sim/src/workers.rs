//! Synthetic worker population: sparse expertise + power-law activity.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use rand_distr::{Distribution, LogNormal};

/// A generated worker population.
///
/// - **Expertise**: every worker has positive skill on all categories (base
///   competence) plus 1–2 specialties with log-normally distributed
///   strength. Skills are *not* normalized — the planted truth matches
///   TDPM's modeling assumption, and the multinomial baselines must cope.
/// - **Activity**: Zipf-distributed participation weight; a small head of
///   power users answers most questions, matching the group-size curves in
///   Figures 3(b)/5(b)/7(b).
#[derive(Debug, Clone)]
pub struct WorkerPool {
    /// `skills[i][k]` = planted skill of worker `i` on category `k`.
    skills: Vec<Vec<f64>>,
    /// Unnormalized activity weights (higher ⇒ answers more questions).
    activity: Vec<f64>,
}

impl WorkerPool {
    /// Generates `num_workers` workers over `num_categories` categories.
    ///
    /// `activity_exponent` is the Zipf exponent of the activity ranking.
    ///
    /// # Panics
    ///
    /// Panics only if the fixed log-normal skill priors were invalid —
    /// their parameters are compile-time constants, so this cannot fire.
    pub fn generate(
        num_workers: usize,
        num_categories: usize,
        activity_exponent: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let specialty_strength = LogNormal::new(1.1, 0.45).expect("valid parameters");
        let base_strength = LogNormal::new(-1.2, 0.5).expect("valid parameters");

        let skills = (0..num_workers)
            .map(|_| {
                let mut s: Vec<f64> = (0..num_categories)
                    .map(|_| base_strength.sample(&mut rng))
                    .collect();
                let num_specialties = if rng.random::<f64>() < 0.35 { 2 } else { 1 };
                for _ in 0..num_specialties.min(num_categories) {
                    let k = rng.random_range(0..num_categories);
                    s[k] += specialty_strength.sample(&mut rng);
                }
                s
            })
            .collect();

        // Deterministic power law over activity ranks (activity of the
        // rank-r worker ∝ 1/(r+1)^s), with ranks randomly permuted so worker
        // id carries no information. A sampled Zipf flattens out at small
        // populations; the deterministic form keeps the head/tail contrast
        // at every scale.
        let mut ranks: Vec<usize> = (0..num_workers).collect();
        for i in (1..num_workers).rev() {
            let j = rng.random_range(0..=i);
            ranks.swap(i, j);
        }
        let s = activity_exponent.max(0.01);
        let activity: Vec<f64> = ranks
            .iter()
            .map(|&r| 1.0 / (1.0 + r as f64).powf(s))
            .collect();
        WorkerPool { skills, activity }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.skills.len()
    }

    /// `true` when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.skills.is_empty()
    }

    /// Planted skill vector of worker `i`.
    pub fn skill(&self, i: usize) -> &[f64] {
        &self.skills[i]
    }

    /// Activity weight of worker `i` (in `(0, 1]`).
    pub fn activity(&self, i: usize) -> f64 {
        self.activity[i]
    }

    /// Planted quality of worker `i` on a task with category `mixture`:
    /// `skill_i · mixture`.
    pub fn quality(&self, i: usize, mixture: &[f64]) -> f64 {
        self.skills[i].iter().zip(mixture).map(|(s, m)| s * m).sum()
    }

    /// Applies multiplicative skill drift in place: each skill entry is
    /// scaled by `exp(rate · z)` with `z ~ Normal(0, 1)`.
    ///
    /// Models expertise changing over time (workers learn new areas, go
    /// stale in old ones) — the workload for the incremental-update
    /// experiments motivated by the paper's "Incremental Crowd-Selection".
    ///
    /// # Panics
    ///
    /// Panics if `rate` is NaN — the drift scale must be a real number.
    pub fn apply_drift(&mut self, rate: f64, rng: &mut impl Rng) {
        let noise = LogNormal::new(0.0, rate.max(1e-12)).expect("valid parameters");
        for skill in &mut self.skills {
            for s in skill.iter_mut() {
                *s *= noise.sample(rng);
            }
        }
    }

    /// Samples `count` distinct answerers for a task, weighted by
    /// `activity × exp(affinity_strength × normalized_quality)` — active and
    /// on-topic workers answer more, like on real platforms.
    pub fn sample_answerers(
        &self,
        mixture: &[f64],
        count: usize,
        affinity_strength: f64,
        rng: &mut impl Rng,
    ) -> Vec<usize> {
        let n = self.len();
        let count = count.min(n);
        let qualities: Vec<f64> = (0..n).map(|i| self.quality(i, mixture)).collect();
        let qmax = qualities.iter().copied().fold(f64::MIN, f64::max);
        let qmin = qualities.iter().copied().fold(f64::MAX, f64::min);
        let range = (qmax - qmin).max(1e-9);
        let mut weights: Vec<f64> = (0..n)
            .map(|i| {
                let affinity = (qualities[i] - qmin) / range; // ∈ [0,1]
                self.activity[i] * (affinity_strength * affinity).exp()
            })
            .collect();

        let mut chosen = Vec::with_capacity(count);
        for _ in 0..count {
            let idx = crate::topics::sample_index(&weights, rng);
            chosen.push(idx);
            weights[idx] = 0.0; // without replacement
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skills_are_positive_and_specialized() {
        let pool = WorkerPool::generate(50, 4, 1.1, 1);
        assert_eq!(pool.len(), 50);
        for i in 0..50 {
            let s = pool.skill(i);
            assert!(s.iter().all(|&x| x > 0.0));
            let max = s.iter().copied().fold(0.0, f64::max);
            let min = s.iter().copied().fold(f64::MAX, f64::min);
            assert!(max > min, "some specialization exists");
        }
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let pool = WorkerPool::generate(300, 4, 1.2, 2);
        let mut acts: Vec<f64> = (0..300).map(|i| pool.activity(i)).collect();
        acts.sort_by(|a, b| b.total_cmp(a));
        // The top decile should dwarf the bottom half in total activity.
        let head: f64 = acts[..30].iter().sum();
        let tail: f64 = acts[150..].iter().sum();
        assert!(head > tail, "head {head} vs tail {tail}");
        assert!(acts.iter().all(|&a| a > 0.0 && a <= 1.0));
    }

    #[test]
    fn quality_is_dot_product() {
        let pool = WorkerPool::generate(5, 3, 1.0, 3);
        let m = vec![1.0, 0.0, 0.0];
        assert!((pool.quality(0, &m) - pool.skill(0)[0]).abs() < 1e-12);
    }

    #[test]
    fn answerers_are_distinct_and_skilled() {
        let pool = WorkerPool::generate(100, 4, 1.0, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mixture = vec![1.0, 0.0, 0.0, 0.0];
        let mut selected_quality = 0.0;
        let mut random_quality = 0.0;
        let rounds = 200;
        for _ in 0..rounds {
            let picked = pool.sample_answerers(&mixture, 3, 3.0, &mut rng);
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "distinct answerers");
            selected_quality += picked
                .iter()
                .map(|&i| pool.quality(i, &mixture))
                .sum::<f64>()
                / 3.0;
            random_quality += (0..3)
                .map(|_| pool.quality(rng.random_range(0..100), &mixture))
                .sum::<f64>()
                / 3.0;
        }
        assert!(
            selected_quality > random_quality,
            "affinity sampling picks better workers: {selected_quality} vs {random_quality}"
        );
    }

    #[test]
    fn requesting_more_answerers_than_workers_clamps() {
        let pool = WorkerPool::generate(3, 2, 1.0, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let picked = pool.sample_answerers(&[0.5, 0.5], 10, 1.0, &mut rng);
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn drift_changes_skills_but_keeps_them_positive() {
        let mut pool = WorkerPool::generate(20, 3, 1.0, 8);
        let before: Vec<f64> = (0..20).map(|i| pool.skill(i)[0]).collect();
        let mut rng = StdRng::seed_from_u64(9);
        pool.apply_drift(0.3, &mut rng);
        let mut changed = 0;
        for (i, prev) in before.iter().enumerate() {
            let s = pool.skill(i);
            assert!(s.iter().all(|&x| x > 0.0), "skills stay positive");
            if (s[0] - prev).abs() > 1e-12 {
                changed += 1;
            }
        }
        assert!(changed >= 19, "drift moved nearly every worker: {changed}");
    }

    #[test]
    fn zero_rate_drift_is_negligible() {
        let mut pool = WorkerPool::generate(5, 2, 1.0, 8);
        let before: Vec<f64> = (0..5).map(|i| pool.skill(i)[0]).collect();
        let mut rng = StdRng::seed_from_u64(9);
        pool.apply_drift(0.0, &mut rng);
        for (i, prev) in before.iter().enumerate() {
            assert!((pool.skill(i)[0] - prev).abs() < 1e-6);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorkerPool::generate(10, 3, 1.0, 42);
        let b = WorkerPool::generate(10, 3, 1.0, 42);
        assert_eq!(a.skill(5), b.skill(5));
        assert_eq!(a.activity(5), b.activity(5));
    }
}
