//! Deterministic fault injection for simulated workers.
//!
//! Real Q&A crowds are dominated by unreliable workers: people who accept a
//! task and never answer, answer long after the asker stopped caring,
//! disconnect mid-session, or type noise. A [`FaultPlan`] assigns each
//! worker one of those behaviours *deterministically from a seed*, so a
//! platform test can inject a precise fault mix (say, 30% no-shows) and
//! assert exact recovery counters — the same seed always produces the same
//! faulty workers.
//!
//! The plan is pure data: it never touches threads or channels. The platform
//! test (or any harness) maps each [`FaultKind`] onto its own notion of a
//! worker behaviour (stay silent, sleep, drop the inbox, answer garbage).

use crowd_store::WorkerId;
use std::time::Duration;

/// The behaviour classes a fault plan can assign to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Answers normally.
    Healthy,
    /// Accepts dispatches but never answers.
    NoShow,
    /// Answers only after [`FaultPlan::straggler_delay`] — typically past
    /// the platform's per-assignment deadline.
    Straggler,
    /// Drops its inbox on the first dispatch and exits (mid-run
    /// disconnect).
    Disconnect,
    /// Returns text that carries no usable content (e.g. punctuation
    /// noise that tokenizes to nothing).
    Garbage,
}

/// A deterministic, seeded assignment of faults to workers.
///
/// Fractions are cumulative probabilities over a per-worker hash: worker
/// `w` draws `u = hash(seed, w) ∈ [0, 1)` once, and the plan carves
/// `[0, 1)` into bands `[no-show | straggler | disconnect | garbage |
/// healthy]`. A worker's fault therefore never changes across tasks or
/// runs — rerunning with the same seed reproduces the exact fault mix,
/// which is what lets tests assert recovery counters exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    no_show: f64,
    straggler: f64,
    disconnect: f64,
    garbage: f64,
    straggler_delay: Duration,
}

impl FaultPlan {
    /// A plan with the given seed and no faults (all workers healthy).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            no_show: 0.0,
            straggler: 0.0,
            disconnect: 0.0,
            garbage: 0.0,
            straggler_delay: Duration::from_millis(50),
        }
    }

    /// Fraction of workers that never answer.
    pub fn with_no_show(mut self, fraction: f64) -> Self {
        self.no_show = fraction.clamp(0.0, 1.0);
        self
    }

    /// Fraction of workers that answer only after the straggler delay.
    pub fn with_straggler(mut self, fraction: f64) -> Self {
        self.straggler = fraction.clamp(0.0, 1.0);
        self
    }

    /// Fraction of workers that disconnect on their first dispatch.
    pub fn with_disconnect(mut self, fraction: f64) -> Self {
        self.disconnect = fraction.clamp(0.0, 1.0);
        self
    }

    /// Fraction of workers that return garbage answers.
    pub fn with_garbage(mut self, fraction: f64) -> Self {
        self.garbage = fraction.clamp(0.0, 1.0);
        self
    }

    /// How long a straggler sleeps before answering.
    pub fn with_straggler_delay(mut self, delay: Duration) -> Self {
        self.straggler_delay = delay;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The straggler sleep duration.
    pub fn straggler_delay(&self) -> Duration {
        self.straggler_delay
    }

    /// The fault assigned to `worker` under this plan.
    pub fn fault_for(&self, worker: WorkerId) -> FaultKind {
        let u = unit_hash(self.seed, u64::from(worker.0));
        let mut edge = self.no_show;
        if u < edge {
            return FaultKind::NoShow;
        }
        edge += self.straggler;
        if u < edge {
            return FaultKind::Straggler;
        }
        edge += self.disconnect;
        if u < edge {
            return FaultKind::Disconnect;
        }
        edge += self.garbage;
        if u < edge {
            return FaultKind::Garbage;
        }
        FaultKind::Healthy
    }

    /// `true` when `worker` is assigned any non-healthy behaviour.
    pub fn is_faulty(&self, worker: WorkerId) -> bool {
        self.fault_for(worker) != FaultKind::Healthy
    }

    /// Workers from `workers` whose assigned fault is `kind`.
    pub fn workers_with(
        &self,
        workers: impl IntoIterator<Item = WorkerId>,
        kind: FaultKind,
    ) -> Vec<WorkerId> {
        workers
            .into_iter()
            .filter(|&w| self.fault_for(w) == kind)
            .collect()
    }
}

/// The fault classes a [`QueryFaultPlan`] can inject at the query layer's
/// storage boundary (reads feeding `Scan`, writes behind `Mutate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryFault {
    /// The operation proceeds normally.
    None,
    /// The operation fails once with a retryable (transient) error — the
    /// class a bounded-backoff retry policy is allowed to absorb.
    TransientError,
    /// The operation succeeds only after [`QueryFaultPlan::latency_delay`].
    Latency,
    /// A read returns a truncated view (a partial read); the harness maps
    /// this onto whatever "short result" means for the wrapped operation.
    PartialRead,
}

/// A deterministic, seeded assignment of faults to query-layer storage
/// operations — [`FaultPlan`]'s sibling for the query path.
///
/// Where a [`FaultPlan`] keys faults by *worker* (a worker's behaviour is a
/// stable trait), a `QueryFaultPlan` keys them by *operation index*: the
/// `n`-th storage operation a query executor performs draws
/// `u = hash(seed, n) ∈ [0, 1)` once and the fractions carve `[0, 1)` into
/// `[transient | latency | partial-read | none]` bands. Same seed, same
/// fault schedule — which is what lets a chaos suite assert exact outcome
/// counts and bit-identical recovered results across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFaultPlan {
    seed: u64,
    transient_error: f64,
    latency: f64,
    partial_read: f64,
    latency_delay: Duration,
}

impl QueryFaultPlan {
    /// A plan with the given seed and no faults (all operations clean).
    pub fn new(seed: u64) -> Self {
        QueryFaultPlan {
            seed,
            transient_error: 0.0,
            latency: 0.0,
            partial_read: 0.0,
            latency_delay: Duration::from_millis(1),
        }
    }

    /// Fraction of operations that fail once with a transient error.
    pub fn with_transient_error(mut self, fraction: f64) -> Self {
        self.transient_error = fraction.clamp(0.0, 1.0);
        self
    }

    /// Fraction of operations delayed by [`QueryFaultPlan::latency_delay`].
    pub fn with_latency(mut self, fraction: f64) -> Self {
        self.latency = fraction.clamp(0.0, 1.0);
        self
    }

    /// Fraction of reads returning a truncated view.
    pub fn with_partial_read(mut self, fraction: f64) -> Self {
        self.partial_read = fraction.clamp(0.0, 1.0);
        self
    }

    /// How long a latency-faulted operation stalls before succeeding.
    pub fn with_latency_delay(mut self, delay: Duration) -> Self {
        self.latency_delay = delay;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The stall injected by [`QueryFault::Latency`].
    pub fn latency_delay(&self) -> Duration {
        self.latency_delay
    }

    /// `true` when every fraction is zero — the plan can never fire.
    pub fn is_clean(&self) -> bool {
        self.transient_error == 0.0 && self.latency == 0.0 && self.partial_read == 0.0
    }

    /// The fault assigned to the `op`-th storage operation under this plan.
    pub fn fault_for_op(&self, op: u64) -> QueryFault {
        let u = unit_hash(self.seed, op);
        let mut edge = self.transient_error;
        if u < edge {
            return QueryFault::TransientError;
        }
        edge += self.latency;
        if u < edge {
            return QueryFault::Latency;
        }
        edge += self.partial_read;
        if u < edge {
            return QueryFault::PartialRead;
        }
        QueryFault::None
    }
}

/// SplitMix64-based hash of `(seed, x)` mapped to `[0, 1)`.
///
/// SplitMix64 passes BigCrush and is a single multiply-xor-shift chain, so
/// the per-worker draw is both well-mixed and trivially reproducible in any
/// language — important if a harness outside Rust ever needs to predict the
/// fault mix.
fn unit_hash(seed: u64, x: u64) -> f64 {
    let mut z = seed ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // 53 top bits → uniform double in [0, 1).
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workers(n: u32) -> Vec<WorkerId> {
        (0..n).map(WorkerId).collect()
    }

    #[test]
    fn same_seed_same_faults() {
        let a = FaultPlan::new(17).with_no_show(0.3).with_garbage(0.1);
        let b = FaultPlan::new(17).with_no_show(0.3).with_garbage(0.1);
        for w in workers(200) {
            assert_eq!(a.fault_for(w), b.fault_for(w));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1).with_no_show(0.5);
        let b = FaultPlan::new(2).with_no_show(0.5);
        let diff = workers(200)
            .into_iter()
            .filter(|&w| a.fault_for(w) != b.fault_for(w))
            .count();
        assert!(diff > 0, "plans with different seeds must diverge");
    }

    #[test]
    fn zero_fractions_mean_all_healthy() {
        let plan = FaultPlan::new(99);
        for w in workers(100) {
            assert_eq!(plan.fault_for(w), FaultKind::Healthy);
            assert!(!plan.is_faulty(w));
        }
    }

    #[test]
    fn fractions_partition_the_population() {
        let plan = FaultPlan::new(7)
            .with_no_show(0.25)
            .with_straggler(0.25)
            .with_disconnect(0.25)
            .with_garbage(0.25);
        for w in workers(100) {
            assert_ne!(plan.fault_for(w), FaultKind::Healthy);
        }
    }

    #[test]
    fn observed_rates_track_requested_fractions() {
        let plan = FaultPlan::new(42).with_no_show(0.3);
        let n = 2000;
        let no_shows = plan.workers_with(workers(n), FaultKind::NoShow).len();
        let rate = no_shows as f64 / n as f64;
        assert!(
            (rate - 0.3).abs() < 0.05,
            "30% requested, {rate:.3} observed"
        );
    }

    #[test]
    fn workers_with_filters_by_kind() {
        let plan = FaultPlan::new(5).with_disconnect(0.5);
        let ws = workers(40);
        let dropped = plan.workers_with(ws.iter().copied(), FaultKind::Disconnect);
        let healthy = plan.workers_with(ws.iter().copied(), FaultKind::Healthy);
        assert_eq!(dropped.len() + healthy.len(), 40);
        for w in dropped {
            assert!(plan.is_faulty(w));
        }
    }

    #[test]
    fn query_plans_are_deterministic_per_seed() {
        let a = QueryFaultPlan::new(17)
            .with_transient_error(0.2)
            .with_latency(0.1)
            .with_partial_read(0.1);
        let b = a.clone();
        for op in 0..500u64 {
            assert_eq!(a.fault_for_op(op), b.fault_for_op(op));
        }
        let other = QueryFaultPlan::new(18)
            .with_transient_error(0.2)
            .with_latency(0.1)
            .with_partial_read(0.1);
        let diff = (0..500u64)
            .filter(|&op| a.fault_for_op(op) != other.fault_for_op(op))
            .count();
        assert!(diff > 0, "different seeds must diverge");
    }

    #[test]
    fn clean_query_plans_never_fire() {
        let plan = QueryFaultPlan::new(42);
        assert!(plan.is_clean());
        for op in 0..200u64 {
            assert_eq!(plan.fault_for_op(op), QueryFault::None);
        }
        assert!(!plan.with_transient_error(0.5).is_clean());
    }

    #[test]
    fn query_fault_rates_track_requested_fractions() {
        let plan = QueryFaultPlan::new(7).with_transient_error(0.3);
        let n = 2000u64;
        let hits = (0..n)
            .filter(|&op| plan.fault_for_op(op) == QueryFault::TransientError)
            .count();
        let rate = hits as f64 / n as f64;
        assert!(
            (rate - 0.3).abs() < 0.05,
            "30% requested, {rate:.3} observed"
        );
    }

    #[test]
    fn unit_hash_stays_in_range() {
        for s in 0..20u64 {
            for x in 0..50u64 {
                let u = unit_hash(s, x);
                assert!((0.0..1.0).contains(&u), "u = {u}");
            }
        }
    }
}
