//! Platform presets mirroring the paper's three datasets (Table 2), scaled.

use serde::{Deserialize, Serialize};

/// Which crowdsourcing platform to emulate. Controls the feedback mechanism
/// and the shape parameters of the generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformKind {
    /// Thumbs-up feedback, medium-length questions, broad topics.
    Quora,
    /// Best-answer feedback (1.0 for the best answerer, Jaccard similarity
    /// to the best answer otherwise), short questions, many casual workers.
    Yahoo,
    /// Thumbs-up (vote score) feedback, longer questions, deep expertise
    /// concentration ("users trust workers with high reputation").
    StackOverflow,
}

impl PlatformKind {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            PlatformKind::Quora => "Quora",
            PlatformKind::Yahoo => "Yahoo",
            PlatformKind::StackOverflow => "Stack",
        }
    }
}

/// Generator parameters.
///
/// The paper's corpora are ~1000× larger (Table 2: Quora 444k questions /
/// 95k users / 887k answers; Yahoo 8.9M/1.0M/26.9M; Stack Overflow
/// 83k/15k/236k); presets keep the *ratios* (answers per question, workers
/// per question) and shrink absolute counts by `scale`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Which platform to emulate.
    pub kind: PlatformKind,
    /// Number of workers `M`.
    pub num_workers: usize,
    /// Number of tasks `N`.
    pub num_tasks: usize,
    /// Vocabulary size `V`.
    pub vocab_size: usize,
    /// Number of planted latent categories.
    pub num_categories: usize,
    /// Mean answers per task (Poisson, min 1).
    pub avg_answers_per_task: f64,
    /// Mean content tokens per task (Poisson, min 3).
    pub tokens_per_task: f64,
    /// Zipf exponent of worker activity (higher → steeper head).
    pub activity_exponent: f64,
    /// How strongly workers prefer tasks matching their expertise (0 = no
    /// preference; 2–4 = strong homophily).
    pub affinity_strength: f64,
    /// Noise standard deviation on true answer quality.
    pub quality_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SimConfig {
    /// Quora-like preset (scale 1.0 ≈ 1/250 of the paper's crawl).
    pub fn quora(scale: f64, seed: u64) -> Self {
        SimConfig {
            kind: PlatformKind::Quora,
            num_workers: scaled(400, scale),
            num_tasks: scaled(1800, scale),
            vocab_size: scaled(1500, scale).max(300),
            num_categories: 8,
            avg_answers_per_task: 2.0,
            tokens_per_task: 14.0,
            activity_exponent: 1.1,
            affinity_strength: 2.5,
            quality_noise: 0.5,
            seed,
        }
    }

    /// Yahoo!-Answers-like preset: short questions, ~3 answers each, a huge
    /// casual tail.
    pub fn yahoo(scale: f64, seed: u64) -> Self {
        SimConfig {
            kind: PlatformKind::Yahoo,
            num_workers: scaled(700, scale),
            num_tasks: scaled(2400, scale),
            vocab_size: scaled(1200, scale).max(300),
            num_categories: 8,
            avg_answers_per_task: 3.0,
            tokens_per_task: 8.0,
            activity_exponent: 1.3,
            affinity_strength: 1.5,
            quality_noise: 0.45,
            seed,
        }
    }

    /// Stack-Overflow-like preset: longer tagged questions, concentrated
    /// expertise, popular questions attract many answerers.
    pub fn stack_overflow(scale: f64, seed: u64) -> Self {
        SimConfig {
            kind: PlatformKind::StackOverflow,
            num_workers: scaled(250, scale),
            num_tasks: scaled(1200, scale),
            vocab_size: scaled(1000, scale).max(300),
            num_categories: 8,
            avg_answers_per_task: 2.8,
            tokens_per_task: 22.0,
            activity_exponent: 0.9,
            affinity_strength: 3.5,
            quality_noise: 0.4,
            seed,
        }
    }

    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_workers == 0 || self.num_tasks == 0 {
            return Err("num_workers and num_tasks must be ≥ 1".into());
        }
        if self.num_categories == 0 {
            return Err("num_categories must be ≥ 1".into());
        }
        if self.vocab_size < self.num_categories {
            return Err("vocab_size must be ≥ num_categories".into());
        }
        if self.avg_answers_per_task < 1.0 {
            return Err("avg_answers_per_task must be ≥ 1".into());
        }
        Ok(())
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            SimConfig::quora(1.0, 0),
            SimConfig::yahoo(1.0, 0),
            SimConfig::stack_overflow(1.0, 0),
        ] {
            assert!(cfg.validate().is_ok(), "{:?}", cfg.kind);
        }
    }

    #[test]
    fn scaling_shrinks_counts_with_floors() {
        let big = SimConfig::quora(1.0, 0);
        let small = SimConfig::quora(0.1, 0);
        assert!(small.num_workers < big.num_workers);
        assert!(small.num_tasks < big.num_tasks);
        assert!(small.vocab_size >= 300, "vocab floor holds");
        let tiny = SimConfig::quora(0.0001, 0);
        assert!(tiny.validate().is_ok());
    }

    #[test]
    fn invalid_configs_detected() {
        let mut cfg = SimConfig::quora(1.0, 0);
        cfg.num_tasks = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SimConfig::quora(1.0, 0);
        cfg.avg_answers_per_task = 0.2;
        assert!(cfg.validate().is_err());
        let mut cfg = SimConfig::quora(1.0, 0);
        cfg.vocab_size = 2;
        cfg.num_categories = 8;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn platform_names() {
        assert_eq!(PlatformKind::Quora.name(), "Quora");
        assert_eq!(PlatformKind::Yahoo.name(), "Yahoo");
        assert_eq!(PlatformKind::StackOverflow.name(), "Stack");
    }
}
