#![warn(missing_docs)]

//! Synthetic crowdsourcing platform generators.
//!
//! The paper evaluates on crawls of Quora, Yahoo! Answers and Stack Overflow
//! (Table 2). Those crawls are not redistributable, so this crate builds
//! *synthetic equivalents* that exercise the same code paths:
//!
//! - a planted [`TopicSpace`] with Zipfian topic–word distributions,
//! - a [`WorkerPool`] with sparse multi-category expertise and power-law
//!   activity (a small core of very active workers, a long tail of
//!   one-question users — the structure Figures 3/5/7 measure),
//! - a [`PlatformGenerator`] that materializes a full [`crowd_store::CrowdDb`]
//!   with tasks, assignments, answers and **platform-specific feedback**:
//!   thumbs-up counts for Quora / Stack Overflow, best-answer + Jaccard
//!   similarity for Yahoo! Answers (Section 4.1.5),
//! - a deterministic, seeded [`FaultPlan`] assigning unreliable behaviours
//!   (no-show, straggler, disconnect, garbage) to workers, so the platform's
//!   recovery paths can be exercised end-to-end with exact, reproducible
//!   fault mixes,
//! - a seeded [`QueryFaultPlan`] assigning transient-error / latency /
//!   partial-read faults to query-layer *storage operations*, the
//!   deterministic schedule behind the query executor's chaos suite,
//! - chunked generation ([`PlatformGenerator::stream_assignments`])
//!   yielding one [`TaskEvent`] at a time from the same RNG sequence as
//!   the eager path (which now consumes it), and a counter-based
//!   [`ScaleGenerator`] whose draws are pure functions of their indices —
//!   the million-worker / ten-million-assignment tier behind the
//!   `fit_smoke` bounded-memory gate.
//!
//! Because skills and categories are planted, the generator provides the
//! ground truth the paper's metrics need (who the "right worker" is) while
//! keeping every selector honest — they only ever see `(T, A, S)`.

pub mod config;
pub mod faults;
pub mod generator;
pub mod scale;
pub mod topics;
pub mod workers;

pub use config::{PlatformKind, SimConfig};
pub use faults::{FaultKind, FaultPlan, QueryFault, QueryFaultPlan};
pub use generator::{
    apply_task_event, AnswerEvent, AssignmentStream, GeneratedPlatform, PlatformGenerator,
    TaskEvent,
};
pub use scale::{ScaleConfig, ScaleGenerator};
pub use topics::TopicSpace;
pub use workers::WorkerPool;
