//! Offline development stub for `crossbeam` 0.8 — channels over
//! `std::sync::mpsc` (with a length counter) and scoped threads over
//! `std::thread::scope`.

pub mod channel {
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Arc};

    /// Unbounded MPSC channel (stub of crossbeam's MPMC; receivers here are
    /// single-consumer, which is all this workspace uses).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let len = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: tx,
                len: Arc::clone(&len),
            },
            Receiver { inner: rx, len },
        )
    }

    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
        len: Arc<AtomicUsize>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                len: Arc::clone(&self.len),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self.inner.send(value) {
                Ok(()) => {
                    self.len.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }
                Err(mpsc::SendError(v)) => Err(SendError(v)),
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            // Unbounded channels never report Full.
            match self.inner.send(value) {
                Ok(()) => {
                    self.len.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }
                Err(mpsc::SendError(v)) => Err(TrySendError::Disconnected(v)),
            }
        }
    }

    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
        len: Arc<AtomicUsize>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let v = self.inner.recv().map_err(|_| RecvError)?;
            self.len.fetch_sub(1, Ordering::SeqCst);
            Ok(v)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let v = self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })?;
            self.len.fetch_sub(1, Ordering::SeqCst);
            Ok(v)
        }

        pub fn len(&self) -> usize {
            self.len.load(Ordering::SeqCst)
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }
}

pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// Stub of `crossbeam::thread::Scope`; wraps the std scoped-thread scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            let handle = self.inner.spawn(move || {
                let s = Scope { inner: inner_scope };
                f(&s)
            });
            ScopedJoinHandle { inner: handle }
        }
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// return. Unlike crossbeam, a panic in an un-joined thread propagates
    /// as a panic rather than an `Err` — fine for development use.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }
}
