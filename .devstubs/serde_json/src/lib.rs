//! Offline development stub for `serde_json` — a real JSON codec over the
//! stub `serde` crate's [`Value`] data model.
//!
//! Fidelity notes:
//! - Finite `f64` values are written with Rust's shortest-roundtrip
//!   `Display` (a `.0` is appended to integer-valued floats, as real
//!   `serde_json` does), so `to_string` → `from_str` reproduces the exact
//!   bit pattern — the behaviour the workspace opts into upstream with the
//!   `float_roundtrip` feature.
//! - Non-finite floats serialize as `null` (matching real `serde_json`).
//! - Object key order is preserved; duplicate keys keep the first value.

use serde::{DeserializeOwned, Serialize};
use std::fmt;

pub use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes any `Serialize` type to a compact JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Serializes to a JSON byte vector.
pub fn to_vec<T: ?Sized + Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(x) => write_f64(out, *x),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Writes a finite `f64` in shortest-roundtrip form; `Display` on `f64` is
/// guaranteed to produce the shortest string that parses back to the same
/// bits, so appending `.0` (to keep it a JSON *float*) preserves exactness.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = x.to_string();
    let is_float_syntax = s.contains(['.', 'e', 'E']);
    out.push_str(&s);
    if !is_float_syntax {
        out.push_str(".0");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Parses JSON text into any `DeserializeOwned` type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parses JSON bytes into any `DeserializeOwned` type.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Rebuilds a type from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(v: Value) -> Result<T> {
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::new("control character in string"));
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                // Preserve the sign bit of `-0` as a float, not integer 0.
                if n == 0 && text.starts_with('-') {
                    return Ok(Value::F64(-0.0));
                }
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
    }
}

/// Minimal `json!`-style construction is intentionally not provided; build
/// [`Value`] trees directly or go through `to_value`.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_bits_roundtrip() {
        for &x in &[
            0.0,
            -0.0,
            1.0,
            -1.5,
            std::f64::consts::PI,
            1e300,
            5e-324,
            f64::MIN_POSITIVE,
            0.1 + 0.2,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "json: {json}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "weird \"quoted\" \\ back\nslash \t tab \u{1F600} emoji \u{7} bell";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn nested_collections_roundtrip() {
        let v: Vec<(u32, Option<f64>, String)> =
            vec![(1, Some(2.5), "a".into()), (2, None, "b".into())];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, Option<f64>, String)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
