//! Offline development stub for `serde_json` — serialization returns a
//! placeholder `{}` document, deserialization always errors. Tests that
//! round-trip JSON will fail under this stub; everything else compiles
//! and runs.

use serde::{DeserializeOwned, Serialize};
use std::fmt;

#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: &str) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Placeholder JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write!(f, "{s:?}"),
        }
    }
}

pub fn to_string<T: ?Sized + Serialize>(_value: &T) -> Result<String> {
    Ok("{}".to_string())
}

pub fn to_string_pretty<T: ?Sized + Serialize>(_value: &T) -> Result<String> {
    Ok("{}".to_string())
}

pub fn to_value<T: Serialize>(_value: T) -> Result<Value> {
    Ok(Value::Null)
}

pub fn from_str<T: DeserializeOwned>(_s: &str) -> Result<T> {
    Err(Error::new(
        "serde_json dev stub cannot deserialize (offline build)",
    ))
}

pub fn from_value<T: DeserializeOwned>(_v: Value) -> Result<T> {
    Err(Error::new(
        "serde_json dev stub cannot deserialize (offline build)",
    ))
}
