//! Offline development stub for `serde` — marker traits only. Every type
//! trivially implements them via blanket impls, so generic bounds resolve;
//! the paired `serde_json` stub does no real (de)serialization.

pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}

    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

pub use de::DeserializeOwned;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
