//! Offline development stub for `serde` — a real (if simplified)
//! serialization framework, not the usual marker-trait no-op.
//!
//! Instead of serde's visitor-driven data model, types convert to and from
//! a self-describing [`Value`] tree (the paired `serde_json` stub renders
//! and parses that tree as JSON text). The derive macros in the
//! `serde_derive` stub generate `to_value` / `from_value` implementations
//! that mirror serde's default external representation, so JSON produced
//! under this stub round-trips — including `f64` payloads bit-exactly,
//! which the store/core snapshot tests rely on.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// Self-describing data-model tree (what `serde_json::Value` re-exports).
///
/// Integers keep their signedness so `u64` values above `i64::MAX` survive,
/// and floats stay separate from integers so `from_value` can rebuild the
/// exact `f64` bit pattern the serializer saw.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (only used above `i64::MAX` by the parser).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Finds a field in an object's entry list (first match wins). Used by the
/// derive-generated `from_value` implementations.
pub fn __find_field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// The standard "missing field" error.
    pub fn missing_field(field: &str) -> Self {
        DeError {
            msg: format!("missing field `{field}`"),
        }
    }

    fn expected(what: &str, got: &Value) -> Self {
        DeError {
            msg: format!("expected {what}, found {}", got.kind()),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a data-model tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
///
/// The lifetime parameter exists only for signature compatibility with real
/// serde bounds (`for<'de> Deserialize<'de>`); this stub always copies.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a data-model tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Called by derived struct impls when a field is absent. `Option`
    /// overrides this to yield `None` (matching serde's behaviour); every
    /// other type reports a missing-field error.
    fn from_missing_field(field: &'static str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

pub mod de {
    //! The `DeserializeOwned` convenience bound, mirroring `serde::de`.

    /// A `Deserialize` impl that does not borrow from the input.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}

    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

pub use de::DeserializeOwned;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match *value {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$ty>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(n) => Value::I64(n),
                    Err(_) => Value::U64(wide),
                }
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match *value {
                    Value::I64(n) => u64::try_from(n)
                        .map_err(|_| DeError::custom("negative integer for unsigned field"))?,
                    Value::U64(n) => n,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$ty>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::F64(x) => Ok(x),
            // Integer-valued floats render without a mantissa under some
            // producers; accept them.
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            ref other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("single-character string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Option / collections / tuples
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &'static str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(Serialize::to_value(&self.$idx)),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("tuple array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Map keys: JSON objects require string keys, so integer keys are written
/// as their decimal string (matching real `serde_json`).
pub trait JsonKey: Sized {
    /// The key as an object-key string.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($ty:ty),*) => {$(
        impl JsonKey for $ty {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse::<$ty>()
                    .map_err(|e| DeError::custom(format!("bad integer key {key:?}: {e}")))
            }
        }
    )*};
}

impl_int_key!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K: JsonKey + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: JsonKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort entries by key string.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<'de, K: JsonKey + Eq + Hash, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

// `Value` itself is serializable (used e.g. as `BTreeMap<String, Value>`).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
