//! Offline development stub for `serde_derive` — the derives are no-ops
//! (the stub `serde` crate blanket-implements its empty traits), but they
//! must exist and accept `#[serde(...)]` attributes so derive lists parse.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
