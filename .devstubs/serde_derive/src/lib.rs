//! Offline development stub for `serde_derive` — real derives, hand-rolled.
//!
//! `syn`/`quote` are not available offline, so the input item is parsed
//! directly from the raw `proc_macro::TokenStream`. Only the shapes this
//! workspace uses are supported: non-generic structs (named, tuple, unit)
//! and non-generic enums (unit / named / tuple variants), plus the
//! `#[serde(skip)]` field attribute. The generated code targets the stub
//! `serde` crate's `Value` data model and mirrors serde's default external
//! representation, so JSON written under these derives round-trips.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape).parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skips attributes at `toks[*i]`, returning whether any was `#[serde(skip)]`.
fn skip_attrs(i: &mut usize, toks: &[TokenTree]) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        let Some(TokenTree::Group(g)) = toks.get(*i) else {
            panic!("serde_derive stub: `#` not followed by an attribute group");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                for tok in args.stream() {
                    if matches!(&tok, TokenTree::Ident(id) if id.to_string() == "skip") {
                        skip = true;
                    }
                }
            }
        }
        *i += 1;
    }
    skip
}

/// Skips `pub` / `pub(...)` at `toks[*i]`.
fn skip_vis(i: &mut usize, toks: &[TokenTree]) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Consumes a type at `toks[*i]` up to (and past) a top-level comma,
/// tracking angle-bracket depth so `Vec<(A, B)>` style types survive.
fn skip_type(i: &mut usize, toks: &[TokenTree]) {
    let mut depth = 0i32;
    while let Some(tok) = toks.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(group_tokens: Vec<TokenTree>) -> Vec<Field> {
    let toks = group_tokens;
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = skip_attrs(&mut i, &toks);
        skip_vis(&mut i, &toks);
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde_derive stub: expected field name, found {:?}", toks[i]);
        };
        let name = name.to_string();
        i += 1;
        assert!(
            matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive stub: expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&mut i, &toks);
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts top-level comma-separated segments (tuple-struct arity).
fn tuple_arity(group_tokens: Vec<TokenTree>) -> usize {
    let toks = group_tokens;
    let mut i = 0;
    let mut arity = 0;
    while i < toks.len() {
        skip_attrs(&mut i, &toks);
        skip_vis(&mut i, &toks);
        if i < toks.len() {
            arity += 1;
            skip_type(&mut i, &toks);
        }
    }
    arity
}

fn parse_variants(group_tokens: Vec<TokenTree>) -> Vec<Variant> {
    let toks = group_tokens;
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&mut i, &toks);
        let TokenTree::Ident(name) = &toks[i] else {
            panic!(
                "serde_derive stub: expected variant name, found {:?}",
                toks[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream().into_iter().collect());
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream().into_iter().collect());
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> (String, Shape) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&mut i, &toks);
    skip_vis(&mut i, &toks);
    let TokenTree::Ident(kw) = &toks[i] else {
        panic!("serde_derive stub: expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("serde_derive stub: expected item name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic types are not supported (item `{name}`)");
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream().into_iter().collect()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_arity(g.stream().into_iter().collect()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive stub: unsupported struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream().into_iter().collect()))
            }
            other => panic!("serde_derive stub: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };
    (name, shape)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

const HEADER: &str = "#[automatically_derived]\n#[allow(clippy::all, clippy::pedantic, unused_variables)]\n";

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut out = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                let _ = writeln!(
                    out,
                    "__fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));",
                    f.name
                );
            }
            out.push_str("::serde::Value::Object(__fields)");
            out
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::Value::Array(::std::vec![{}])",
                elems.join(", ")
            )
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut out = String::from("match self {\n");
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(
                            out,
                            "{name}::{0} => ::serde::Value::String(::std::string::String::from(\"{0}\")),",
                            v.name
                        );
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut arm = format!(
                            "{name}::{} {{ {} }} => {{\nlet mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                            v.name,
                            binds.join(", ")
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            let _ = writeln!(
                                arm,
                                "__fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0})));",
                                f.name
                            );
                        }
                        let _ = writeln!(
                            arm,
                            "::serde::Value::Object(::std::vec![(::std::string::String::from(\"{}\"), ::serde::Value::Object(__fields))])\n}},",
                            v.name
                        );
                        out.push_str(&arm);
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            out,
                            "{name}::{0}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(__f0))]),",
                            v.name
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = writeln!(
                            out,
                            "{name}::{0}({1}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{0}\"), ::serde::Value::Array(::std::vec![{2}]))]),",
                            v.name,
                            binds.join(", "),
                            elems.join(", ")
                        );
                    }
                }
            }
            out.push('}');
            out
        }
    };
    format!(
        "{HEADER}impl ::serde::Serialize for {name} {{\nfn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn named_fields_ctor(path: &str, fields: &[Field], source: &str) -> String {
    let mut out = format!("{path} {{\n");
    for f in fields {
        if f.skip {
            let _ = writeln!(out, "{}: ::std::default::Default::default(),", f.name);
        } else {
            let _ = writeln!(
                out,
                "{0}: match ::serde::__find_field({source}, \"{0}\") {{\n::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n::std::option::Option::None => ::serde::Deserialize::from_missing_field(\"{0}\")?,\n}},",
                f.name
            );
        }
    }
    out.push('}');
    out
}

fn tuple_ctor(path: &str, arity: usize, items: &str) -> String {
    let args: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&{items}[{i}])?"))
        .collect();
    format!("{path}({})", args.join(", "))
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let ctor = named_fields_ctor(name, fields, "__entries");
            format!(
                "let __entries = __value.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object for struct `{name}`\"))?;\n::std::result::Result::Ok({ctor})"
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
        ),
        Shape::TupleStruct(n) => format!(
            "let __items = __value.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for tuple struct `{name}`\"))?;\nif __items.len() != {n} {{\nreturn ::std::result::Result::Err(::serde::DeError::custom(\"wrong tuple arity for `{name}`\"));\n}}\n::std::result::Result::Ok({ctor})",
            ctor = tuple_ctor(name, *n, "__items")
        ),
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                        v.name
                    )
                })
                .collect();
            let string_arm = format!(
                "::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}__other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown unit variant `{{__other}}` for enum `{name}`\"))),\n}},"
            );
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        // Also accept `{"Variant": null}` for symmetry.
                        let _ = writeln!(
                            tagged_arms,
                            "\"{0}\" => ::std::result::Result::Ok({name}::{0}),",
                            v.name
                        );
                    }
                    VariantKind::Named(fields) => {
                        let ctor =
                            named_fields_ctor(&format!("{name}::{}", v.name), fields, "__inner");
                        let _ = writeln!(
                            tagged_arms,
                            "\"{0}\" => {{\nlet __inner = __payload.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object payload for variant `{0}`\"))?;\n::std::result::Result::Ok({ctor})\n}},",
                            v.name
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            tagged_arms,
                            "\"{0}\" => ::std::result::Result::Ok({name}::{0}(::serde::Deserialize::from_value(__payload)?)),",
                            v.name
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let ctor = tuple_ctor(&format!("{name}::{}", v.name), *n, "__items");
                        let _ = writeln!(
                            tagged_arms,
                            "\"{0}\" => {{\nlet __items = __payload.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array payload for variant `{0}`\"))?;\nif __items.len() != {n} {{\nreturn ::std::result::Result::Err(::serde::DeError::custom(\"wrong arity for variant `{0}`\"));\n}}\n::std::result::Result::Ok({ctor})\n}},",
                            v.name
                        );
                    }
                }
            }
            format!(
                "match __value {{\n{string_arm}\n::serde::Value::Object(__entries) if __entries.len() == 1 => {{\nlet (__tag, __payload) = &__entries[0];\nmatch __tag.as_str() {{\n{tagged_arms}__other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{__other}}` for enum `{name}`\"))),\n}}\n}}\n__other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"expected string or single-key object for enum `{name}`, found {{}}\", __other.kind()))),\n}}"
            )
        }
    };
    format!(
        "{HEADER}impl<'de> ::serde::Deserialize<'de> for {name} {{\nfn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
