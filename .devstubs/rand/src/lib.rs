//! Offline development stub for `rand` 0.10 — API-compatible with the
//! subset this workspace uses (StdRng, SeedableRng, Rng, RngExt).
//! NOT cryptographically secure; deterministic xoshiro256++ core.

use std::ops::Range;

/// Core RNG trait (stub of `rand::Rng`, the object-safe core).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable by `RngExt::random`.
pub trait RandomValue {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl RandomValue for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl RandomValue for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandomValue for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl RandomValue for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by `RngExt::random_range`.
pub trait SampleRange<T> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in random_range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        let u = f32::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods (stub of `rand::RngExt`).
pub trait RngExt: Rng {
    fn random<T: RandomValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ (stub of `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(seed: u64) -> Self {
            // SplitMix64 expansion of the seed.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}
