//! Offline development stub for `criterion` 0.8 — runs each benchmark
//! routine a handful of times and reports a rough mean. No statistics,
//! no reports; just enough API for the bench targets to compile and run.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

const STUB_ITERS: u32 = 10;

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(id);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: fmt::Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    nanos_per_iter: f64,
    ran: bool,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            nanos_per_iter: 0.0,
            ran: false,
        }
    }

    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..STUB_ITERS {
            black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(STUB_ITERS);
        self.ran = true;
    }

    fn report(&self, id: &str) {
        if self.ran {
            println!("bench {id}: ~{:.0} ns/iter (criterion stub)", self.nanos_per_iter);
        }
    }
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
