//! Offline development stub for `rand_distr` 0.6 — Normal, LogNormal,
//! Poisson via textbook samplers over the stub `rand` core.

use rand::Rng;
use std::fmt;

/// Stub of `rand_distr::Distribution`.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

fn unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; reject u1 == 0 to keep ln finite.
    loop {
        let u1: f64 = unit(rng);
        let u2: f64 = unit(rng);
        if u1 > 0.0 {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoissonError;

impl fmt::Display for PoissonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid poisson distribution parameters")
    }
}

impl std::error::Error for PoissonError {}

#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    pub fn new(lambda: f64) -> Result<Self, PoissonError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Poisson { lambda })
        } else {
            Err(PoissonError)
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's product-of-uniforms method.
            let limit = (-self.lambda).exp();
            let mut count = 0u64;
            let mut product: f64 = unit(rng);
            while product > limit {
                count += 1;
                product *= unit(rng);
            }
            count as f64
        } else {
            // Normal approximation is fine for a dev stub at large λ.
            let n = standard_normal(rng);
            (self.lambda + self.lambda.sqrt() * n).round().max(0.0)
        }
    }
}
