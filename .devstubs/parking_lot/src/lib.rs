//! Offline development stub for `parking_lot` 0.12 — std locks with
//! panic-on-poison guards (parking_lot guards carry no `Result`).

use std::sync::{self, MutexGuard as StdMutexGuard};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn const_new(value: T) -> Self {
        // std Mutex::new is const since 1.63.
        Mutex(sync::Mutex::new(value))
    }

    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
