//! Offline development stub for `proptest` 1.x — generation only, no
//! shrinking, no regression persistence. Supports the subset this
//! workspace uses: `proptest!`, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`, `Just`, range strategies, tuple strategies, regex-lite
//! string strategies, `prop::collection::vec`, `prop::option::of`,
//! `proptest::bool::ANY`, and `ProptestConfig::with_cases`.

pub mod test_runner {
    use std::fmt;

    /// Deterministic xoshiro-style RNG for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn seeded(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Outcome of a single generated test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case is skipped, not failed.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 65_536,
            }
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: TestRng::seeded(0x5EED_CAFE_F00D_D00D),
            }
        }

        /// Runs `case` until `cases` successes; panics on the first failure.
        pub fn run_test<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut passed = 0u32;
            let mut rejects = 0u32;
            while passed < self.config.cases {
                match case(&mut self.rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > self.config.max_global_rejects {
                            panic!("proptest stub: too many prop_assume! rejections");
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed (after {passed} passes): {msg}");
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Value-generation strategy (no shrinking in this stub).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe view of [`Strategy`] so `prop_oneof!` can mix types.
    pub trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (backs `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<Box<dyn DynStrategy<V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate_dyn(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e as i128 - s as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (s as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// `&'static str` regex-lite strategies: supports literal characters,
    /// `.`, `[...]` classes with ranges, and `{m,n}` / `{n}` repetition —
    /// enough for patterns like `"[a-z0-9]{1,8}"` and `".{0,80}"`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // 1. Parse one atom into a set of candidate characters.
            let candidates: Vec<char> = match chars[i] {
                '.' => {
                    i += 1;
                    (0x20u8..0x7F).map(|b| b as char).collect()
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .expect("unterminated character class in stub regex");
                    let inner = &chars[i + 1..close];
                    i = close + 1;
                    parse_class(inner)
                }
                '\\' => {
                    let c = *chars.get(i + 1).expect("dangling escape in stub regex");
                    i += 2;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            assert!(!candidates.is_empty(), "empty character class in stub regex");
            // 2. Optional repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .expect("unterminated repetition in stub regex");
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad repetition bound"),
                        b.trim().parse::<usize>().expect("bad repetition bound"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                let pick = rng.below(candidates.len() as u64) as usize;
                out.push(candidates[pick]);
            }
        }
        out
    }

    fn parse_class(inner: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut j = 0;
        while j < inner.len() {
            if j + 2 < inner.len() && inner[j + 1] == '-' {
                let (a, b) = (inner[j] as u32, inner[j + 2] as u32);
                assert!(a <= b, "inverted range in character class");
                for c in a..=b {
                    if let Some(ch) = char::from_u32(c) {
                        set.push(ch);
                    }
                }
                j += 3;
            } else {
                set.push(inner[j]);
                j += 1;
            }
        }
        set
    }
}

/// `prop::` namespace (`prop::collection::vec`, `prop::option::of`, ...).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        /// Inclusive size bounds for collection strategies.
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<::std::ops::Range<usize>> for SizeRange {
            fn from(r: ::std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// Vector of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            let size = size.into();
            VecStrategy {
                element,
                min: size.min,
                max: size.max,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        pub struct OptionStrategy<S>(S);

        /// `None` half the time, otherwise `Some` of the inner strategy.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }

    pub use super::bool;
}

/// `proptest::bool::ANY`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>,)+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_test(|rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                result
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
