//! Best-answerer prediction on a synthetic Yahoo!-Answers-style platform.
//!
//! Yahoo! feedback is qualitative: the asker marks one answer as *best*
//! (score 1.0) and other answers score their Jaccard similarity to it
//! (paper Section 4.1.5). This example trains TDPM on that signal and
//! measures how often it puts the future best answerer first.
//!
//! ```text
//! cargo run --release --example best_answerer
//! ```

use crowdselect::eval::metrics::accu;
use crowdselect::prelude::*;

fn main() {
    let sim = SimConfig::yahoo(0.08, 11);
    println!(
        "generating Yahoo-like platform: {} workers, {} tasks…",
        sim.num_workers, sim.num_tasks
    );
    let platform = PlatformGenerator::new(sim).generate();
    let db = &platform.db;

    // Split: train on the first 80% of tasks, test on the rest. The model
    // must predict best answerers for questions it never saw.
    let all = db.resolved_tasks();
    let split = all.len() * 8 / 10;
    let mut train_db = CrowdDb::new();
    // Rebuild a training database with the same ids.
    for w in db.worker_ids() {
        train_db.add_worker(db.worker(w).unwrap().handle.clone());
    }
    for term in (0..db.vocab().len()).map(|i| {
        db.vocab()
            .term(crowdselect::text::TermId(
                u32::try_from(i).expect("vocab fits u32"),
            ))
            .unwrap()
            .to_owned()
    }) {
        train_db.vocab_mut().intern(&term);
    }
    for rt in &all[..split] {
        let rec = db.task(rt.task).unwrap();
        let t = train_db.add_task_raw(rec.text.clone(), rec.bow.clone());
        for &(w, s) in &rt.scores {
            train_db.assign(w, t).unwrap();
            train_db.record_feedback(w, t, s).unwrap();
        }
    }
    println!(
        "training on {} tasks, testing on {}",
        split,
        all.len() - split
    );

    let config = TdpmConfig {
        num_categories: 8,
        max_em_iters: 12,
        seed: 3,
        ..TdpmConfig::default()
    };
    let model = TdpmTrainer::new(config)
        .fit(&train_db)
        .expect("training data");

    // Test: rank each held-out question's answerers; the ground truth is the
    // recorded best answerer.
    let mut accu_sum = 0.0;
    let mut top1 = 0usize;
    let mut n = 0usize;
    for rt in &all[split..] {
        if rt.scores.len() < 2 {
            continue;
        }
        let right = rt
            .scores
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
        let projection = model.project_bow(&rt.bow);
        let candidates: Vec<WorkerId> = rt.scores.iter().map(|&(w, _)| w).collect();
        let ranked = model.rank_all(&projection, candidates.iter().copied());
        let rank = ranked
            .iter()
            .position(|r| r.worker == right)
            .map(|p| p + 1)
            .unwrap_or(candidates.len());
        accu_sum += accu(rank, candidates.len());
        if rank == 1 {
            top1 += 1;
        }
        n += 1;
    }
    println!("\nheld-out questions evaluated: {n}");
    println!("mean ACCU (precision): {:.3}", accu_sum / n as f64);
    println!("Top-1 recall:          {:.3}", top1 as f64 / n as f64);

    // Baseline for context: picking a uniformly random answerer.
    let avg_candidates: f64 = all[split..]
        .iter()
        .filter(|rt| rt.scores.len() >= 2)
        .map(|rt| rt.scores.len() as f64)
        .sum::<f64>()
        / n as f64;
    println!(
        "random-pick Top-1 would be ≈ {:.3} ({avg_candidates:.1} answerers/question)",
        1.0 / avg_candidates
    );
}
