//! An interactive crowd-selection query shell.
//!
//! ```text
//! cargo run --release --example query_shell                       # interactive
//! cargo run --release --example query_shell -- --demo             # scripted demo
//! cargo run --release --example query_shell -- --db crowd.log     # durable (WAL)
//! cargo run --release --example query_shell -- --deadline-ms 250  # per-statement deadline
//! ```
//!
//! Statements (end with Enter; `quit` to leave):
//!
//! ```text
//! INSERT WORKER 'ada'
//! INSERT TASK 'advantages of b+ tree over b tree'
//! ASSIGN WORKER 0 TO TASK 0
//! FEEDBACK WORKER 0 ON TASK 0 SCORE 4
//! TRAIN MODEL WITH 8 CATEGORIES
//! SELECT WORKERS FOR TASK 'why does a btree split' LIMIT 2
//! SELECT WORKERS FOR TASK '…' USING vsm WHERE GROUP >= 2
//! SHOW STATS | SHOW WORKER 0 | SHOW TASK 0 | SHOW GROUPS 1, 5
//! SHOW SIMILAR 'btree split' LIMIT 3
//! EXPLAIN SELECT WORKERS FOR TASK 'why does a btree split' LIMIT 2
//! ```
//!
//! `EXPLAIN <statement>` renders the logical plan the statement compiles
//! to instead of executing it (DESIGN.md §8).
//!
//! `--deadline-ms N` runs every statement under a [`QueryContext`] with an
//! N-millisecond deadline and the partial degradation policy: a select
//! that cannot finish in time returns its scanned prefix marked
//! `degraded` instead of an error, and results carry their in-context
//! elapsed time (DESIGN.md §9).

use crowdselect::query::{QueryContext, QueryEngine};
use std::io::{BufRead, Write};
use std::time::Duration;

const DEMO_SCRIPT: &[&str] = &[
    "INSERT WORKER 'dba'",
    "INSERT WORKER 'statistician'",
    "INSERT TASK 'btree page split index buffer disk'",
    "INSERT TASK 'gaussian prior posterior likelihood variance'",
    "INSERT TASK 'btree range scan clustered index'",
    "INSERT TASK 'variational bayes gaussian inference'",
    "ASSIGN WORKER 0 TO TASK 0",
    "ASSIGN WORKER 1 TO TASK 0",
    "ASSIGN WORKER 1 TO TASK 1",
    "ASSIGN WORKER 0 TO TASK 1",
    "ASSIGN WORKER 0 TO TASK 2",
    "ASSIGN WORKER 1 TO TASK 3",
    "FEEDBACK WORKER 0 ON TASK 0 SCORE 5",
    "FEEDBACK WORKER 1 ON TASK 0 SCORE 1",
    "FEEDBACK WORKER 1 ON TASK 1 SCORE 4",
    "FEEDBACK WORKER 0 ON TASK 1 SCORE 0.5",
    "FEEDBACK WORKER 0 ON TASK 2 SCORE 4",
    "FEEDBACK WORKER 1 ON TASK 3 SCORE 4",
    "SHOW STATS",
    "TRAIN MODEL WITH 2 CATEGORIES",
    "SHOW WORKER 0",
    "SHOW WORKER 1",
    "EXPLAIN SELECT WORKERS FOR TASK 'why does my btree split pages' LIMIT 2",
    "SELECT WORKERS FOR TASK 'why does my btree split pages' LIMIT 2",
    "SELECT WORKERS FOR TASK 'choosing a prior for the variance' LIMIT 2",
    "SELECT WORKERS FOR TASK 'btree buffer pool' LIMIT 1 USING vsm",
    "SHOW GROUPS 1, 2, 3",
    "SHOW SIMILAR 'btree index' LIMIT 2",
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let demo = args.iter().any(|a| a == "--demo");
    let db_path = args
        .iter()
        .position(|a| a == "--db")
        .and_then(|i| args.get(i + 1));
    let deadline = args
        .iter()
        .position(|a| a == "--deadline-ms")
        .and_then(|i| args.get(i + 1))
        .map(|ms| {
            let ms: u64 = ms.parse().expect("--deadline-ms takes milliseconds");
            Duration::from_millis(ms)
        });
    if let Some(d) = deadline {
        println!(
            "per-statement deadline: {:.0}ms (late selects degrade to a partial ranking)",
            d.as_secs_f64() * 1e3
        );
    }
    let mut engine = match db_path {
        Some(path) => {
            println!("write-ahead logging to {path}");
            QueryEngine::open_logged(path).expect("open WAL")
        }
        None => QueryEngine::new(),
    };

    if demo {
        for stmt in DEMO_SCRIPT {
            println!("crowd> {stmt}");
            run_one(&mut engine, stmt, deadline);
        }
        return;
    }

    println!("crowd-selection query shell — type statements, or 'quit' to exit.");
    println!("try: INSERT WORKER 'ada'   /   SHOW STATS   /   --demo for a scripted tour\n");
    let stdin = std::io::stdin();
    loop {
        print!("crowd> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
            break;
        }
        run_one(&mut engine, line, deadline);
    }
}

fn run_one(engine: &mut QueryEngine, stmt: &str, deadline: Option<Duration>) {
    let result = match deadline {
        Some(d) => {
            // A fresh context per statement: the clock starts at the prompt.
            let ctx = QueryContext::unbounded()
                .with_deadline(d)
                .degrade_to_partial();
            engine.run_with(stmt, &ctx)
        }
        None => engine.run(stmt),
    };
    match result {
        Ok(output) => println!("{output}"),
        Err(e) => println!("error: {e}"),
    }
}
