//! Quickstart: infer "who knows what" from feedback history and route a new
//! question to the right expert.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use crowdselect::prelude::*;

fn main() {
    // 1. A small history of resolved Q&A tasks with feedback scores.
    //    Ada shines on database questions, Carl on statistics.
    let mut db = CrowdDb::new();
    let ada = db.add_worker("ada");
    let carl = db.add_worker("carl");

    let history = [
        ("advantages of b+ tree over b tree", ada, 5.0, carl, 1.0),
        ("btree page split and buffer pool", ada, 4.0, carl, 0.0),
        ("index range scan on clustered btree", ada, 4.0, carl, 1.0),
        ("posterior under a gaussian prior", carl, 5.0, ada, 0.5),
        (
            "variational inference for latent models",
            carl,
            4.0,
            ada,
            1.0,
        ),
        ("variance of a gaussian likelihood", carl, 4.0, ada, 0.0),
    ];
    for (text, good, good_score, bad, bad_score) in history {
        let t = db.add_task(text);
        db.assign(good, t).unwrap();
        db.assign(bad, t).unwrap();
        db.record_feedback(good, t, good_score).unwrap();
        db.record_feedback(bad, t, bad_score).unwrap();
    }
    println!(
        "history: {} tasks, {} workers, {} scored answers",
        db.num_tasks(),
        db.num_workers(),
        db.num_resolved()
    );

    // 2. Fit the task-driven probabilistic model (Algorithm 2).
    let config = TdpmConfig {
        num_categories: 2,
        seed: 7,
        ..TdpmConfig::default()
    };
    let model = TdpmTrainer::new(config)
        .fit(&db)
        .expect("training data present");
    for (name, w) in [("ada", ada), ("carl", carl)] {
        let skill = model.skill(w).unwrap();
        println!(
            "{name:>5} latent skills: {:?}",
            rounded(skill.mean.as_slice())
        );
    }

    // 3. A brand-new question is projected onto the learned latent category
    //    space (Algorithm 3) and the top worker is selected (Eq. 1).
    for question in [
        "why does a btree split pages on insert",
        "how do i put a prior on a variance parameter",
    ] {
        let tokens = tokenize_filtered(question);
        let bow = BagOfWords::from_tokens(&tokens, db.vocab_mut());
        let projection = model.project_bow(&bow);
        let ranked = model.select_top_k(&projection, db.worker_ids(), 2);
        let names: Vec<String> = ranked
            .iter()
            .map(|r| format!("{} ({:.2})", db.worker(r.worker).unwrap().handle, r.score))
            .collect();
        println!("\nQ: {question}\n   ask: {}", names.join(", "));
    }
}

fn rounded(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 100.0).round() / 100.0).collect()
}
