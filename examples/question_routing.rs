//! Question routing on a synthetic Quora-style platform: compare all four
//! crowd-selection algorithms (VSM, TSPM, DRM, TDPM) on held-out questions.
//!
//! ```text
//! cargo run --release --example question_routing
//! ```

use crowdselect::eval::metrics::EvalAccumulator;
use crowdselect::eval::protocol::EvalProtocol;
use crowdselect::prelude::*;
use crowdselect::store::WorkerGroup as Group;

fn main() {
    // A scaled-down Quora: power-law worker activity, thumbs-up feedback.
    let sim = SimConfig::quora(0.1, 42);
    println!(
        "generating Quora-like platform: {} workers, {} tasks…",
        sim.num_workers, sim.num_tasks
    );
    let platform = PlatformGenerator::new(sim).generate();
    let db = &platform.db;
    let (q, u, a) = platform.stats();
    println!("generated {q} questions, {u} users, {a} answers\n");

    // Fit each selector on the full history.
    let k = 8;
    println!("fitting selectors (K = {k} latent categories)…");
    let selectors: Vec<Box<dyn CrowdSelector>> = vec![
        Box::new(VsmSelector::fit(db)),
        Box::new(TspmSelector::fit(db, k, 1)),
        Box::new(DrmSelector::fit(db, k, 1)),
        Box::new(TdpmSelector::fit(db, k, 1).expect("resolved tasks exist")),
    ];

    // Evaluate on questions whose best answerer is an active worker.
    let group = Group::extract(db, 3);
    let protocol = EvalProtocol::new(200, 7);
    let questions = protocol.test_questions(db, &group);
    println!(
        "evaluating on {} held-out questions (best answerer among {} active workers)\n",
        questions.len(),
        group.len()
    );

    println!(
        "{:<8} {:>10} {:>8} {:>8} {:>12}",
        "algo", "precision", "top1", "top2", "latency(ms)"
    );
    let mut results: Vec<(&str, EvalAccumulator)> = Vec::new();
    for s in &selectors {
        let acc = protocol.evaluate(s.as_ref(), &questions);
        println!(
            "{:<8} {:>10.3} {:>8.3} {:>8.3} {:>12.4}",
            s.name(),
            acc.precision(),
            acc.top_k(1),
            acc.top_k(2),
            acc.mean_latency_ms()
        );
        results.push((s.name(), acc));
    }

    // Show one concrete routing decision.
    let sample = &questions[0];
    println!(
        "\nsample question: {:?}",
        db.task(sample.task).unwrap().text
    );
    println!("right worker (best answerer): {}", sample.right);
    for s in &selectors {
        let top = s.select(&sample.bow, &sample.candidates, 2);
        let picks: Vec<String> = top.iter().map(|r| r.worker.to_string()).collect();
        println!("  {:<5} picks {}", s.name(), picks.join(", "));
    }
}
