//! Ablations of TDPM's design choices on a synthetic Quora platform:
//!
//! - **full vs diagonal covariance priors** (the paper's Section 4.3.1
//!   "special case" assumes independent skills / categories),
//! - **latent category count K** (Tables 3/5/7 sweep 10–50),
//! - **evaluation mode** (fitted feedback-informed posterior vs word-only
//!   re-projection of the test task).
//!
//! ```text
//! cargo run --release --example ablation_config
//! ```

use crowdselect::baselines::TdpmSelector;
use crowdselect::eval::protocol::EvalProtocol;
use crowdselect::model::{TdpmConfig, TdpmTrainer};
use crowdselect::prelude::*;
use crowdselect::store::WorkerGroup as Group;

fn main() {
    let platform = PlatformGenerator::new(SimConfig::quora(0.15, 99)).generate();
    let db = &platform.db;
    println!(
        "platform: {} tasks, {} workers, {} answers\n",
        db.num_tasks(),
        db.num_workers(),
        db.num_assignments()
    );

    let group = Group::extract(db, 1);
    let reconstruct = EvalProtocol::new(250, 5);
    let project = EvalProtocol::projecting(250, 5);
    let questions = reconstruct.test_questions(db, &group);
    println!("evaluating on {} questions\n", questions.len());

    println!(
        "{:<6} {:<10} {:>14} {:>12}",
        "K", "covariance", "reconstruct", "project"
    );
    for k in [4usize, 8, 16, 32] {
        for diagonal in [false, true] {
            let cfg = TdpmConfig {
                num_categories: k,
                diagonal_covariance: diagonal,
                max_em_iters: 15,
                seed: 7,
                ..TdpmConfig::default()
            };
            let model = TdpmTrainer::new(cfg).fit(db).expect("training data");
            let selector = TdpmSelector::new(model);
            let p_rec = reconstruct.evaluate(&selector, &questions).precision();
            let p_proj = project.evaluate(&selector, &questions).precision();
            println!(
                "{:<6} {:<10} {:>14.3} {:>12.3}",
                k,
                if diagonal { "diagonal" } else { "full" },
                p_rec,
                p_proj
            );
        }
    }

    println!(
        "\nReading: precision peaks near the planted category count (8) and \
         collapses once K over-parametrizes the corpus; diagonal covariance \
         is competitive at small K (fewer parameters to estimate) while full \
         covariance wins in the mid range; the fitted feedback-informed \
         posterior (reconstruct) consistently beats word-only re-projection."
    );
}
