//! The live system of Figure 1: crowd manager + task dispatcher + worker
//! threads + answer collector, with incremental skill updates.
//!
//! ```text
//! cargo run --release --example live_platform
//! ```

use crowdselect::obs::{JsonlSink, Registry, Tracer};
use crowdselect::platform::{Pipeline, PipelineConfig};
use crowdselect::prelude::*;
use crowdselect::store::LoggedDb;
use std::sync::Arc;

fn main() {
    // One shared observability handle: every layer below (WAL, trainer,
    // model, pipeline) records into the same registry, and trace events
    // stream to results/live_platform_trace.jsonl.
    let _ = std::fs::create_dir_all("results");
    let tracer = match JsonlSink::create("results/live_platform_trace.jsonl") {
        Ok(sink) => Tracer::new(Arc::new(sink)),
        Err(_) => Tracer::noop(),
    };
    let obs = Obs::new(Arc::new(Registry::new()), tracer);

    // Seed the crowd database with history for three specialists — through
    // the write-ahead log, so the snapshot below includes WAL timings.
    let wal_path = std::env::temp_dir().join(format!("live_platform_{}.wal", std::process::id()));
    std::fs::remove_file(&wal_path).ok();
    let mut logged = LoggedDb::open(&wal_path).expect("temp WAL");
    logged.set_obs(&obs);
    let dba = logged.add_worker("dba").unwrap();
    let stat = logged.add_worker("statistician").unwrap();
    let web = logged.add_worker("webdev").unwrap();
    let history: &[(&str, WorkerId)] = &[
        ("btree page split buffer pool checkpoint", dba),
        ("btree index clustered range scan", dba),
        ("write ahead log and btree recovery", dba),
        ("gaussian prior posterior conjugacy", stat),
        ("variance estimation with gaussian likelihood", stat),
        ("bayes rule for latent gaussian models", stat),
        ("css flexbox layout overflowing container", web),
        ("javascript promise async await ordering", web),
        ("css grid template responsive layout", web),
    ];
    for &(text, expert) in history {
        let t = logged.add_task(text).unwrap();
        for &w in &[dba, stat, web] {
            logged.assign(w, t).unwrap();
            let score = if w == expert { 4.0 } else { 0.5 };
            logged.record_feedback(w, t, score).unwrap();
        }
    }
    logged.checkpoint().expect("compaction");
    let db = logged.into_db();
    std::fs::remove_file(&wal_path).ok();

    // Start the pipeline: trains the model and spawns one thread per worker.
    let config = PipelineConfig {
        top_k: 1,
        tdpm: TdpmConfig {
            num_categories: 3,
            max_em_iters: 25,
            seed: 5,
            ..TdpmConfig::default()
        },
        obs: obs.clone(),
        ..PipelineConfig::default()
    };
    let answer_fn = Arc::new(|w: WorkerId, d: &crowdselect::platform::events::Dispatch| {
        format!("answer to task {} from worker {}", d.task, w)
    });
    let pipeline = Pipeline::start(db, config, answer_fn).expect("history present");
    println!("pipeline started: model trained, 3 worker threads online\n");

    // A live stream of incoming questions; the simulated asker scores the
    // received answer by whether the right specialist produced it.
    let stream: &[(&str, WorkerId)] = &[
        ("why does my btree index bloat after deletes", dba),
        ("posterior variance under a conjugate gaussian prior", stat),
        ("flexbox children overflow their container", web),
        ("btree page split storm during bulk load", dba),
        ("prior choice for gaussian variance", stat),
        ("css grid rows collapse unexpectedly", web),
    ];
    let experts: Vec<WorkerId> = stream.iter().map(|&(_, e)| e).collect();
    let texts: Vec<&str> = stream.iter().map(|&(t, _)| t).collect();

    // Stream tasks are appended after the history, so task id − base gives
    // the stream index (and thus the right specialist).
    let base = pipeline.manager().db().read().num_tasks();
    let expert_table = experts.clone();
    let score_fn =
        move |w: WorkerId, d: &crowdselect::platform::events::Dispatch, _answer: &str| {
            // The asker knows a good answer when they see one: the right
            // specialist gets 4–5 thumbs, anyone else gets 0–1.
            let idx = d.task.index().saturating_sub(base);
            if idx < expert_table.len() && w == expert_table[idx] {
                4.5
            } else {
                0.5
            }
        };

    let report = pipeline.run(&texts, &score_fn);
    println!("pipeline report: {report:?}\n");

    // Inspect the routing decisions that were made.
    let manager = pipeline.shutdown();
    let db = manager.db().read();
    let first_new = db.num_tasks() - texts.len();
    let mut correct = 0;
    for (i, (&text, &expert)) in texts.iter().zip(&experts).enumerate() {
        let task = TaskId(u32::try_from(first_new + i).expect("task id fits u32"));
        let assigned: Vec<WorkerId> = db.workers_of(task).map(|(w, _)| w).collect();
        let hit = assigned.contains(&expert);
        if hit {
            correct += 1;
        }
        println!(
            "{} routed to {:?} — {}",
            text,
            assigned
                .iter()
                .map(|&w| db.worker(w).unwrap().handle.clone())
                .collect::<Vec<_>>(),
            if hit { "expert ✓" } else { "miss ✗" }
        );
    }
    println!(
        "\n{correct}/{} live questions reached the right specialist",
        texts.len()
    );

    // Everything the run recorded, in one deterministic-ordered snapshot:
    // WAL append/compaction timings, trainer epoch timings and ELBO,
    // projection latency percentiles, and the pipeline lifecycle counters.
    let snapshot: MetricsSnapshot = obs.snapshot();
    println!("\nmetrics snapshot:\n{}", snapshot.summary());
    if std::fs::write("results/live_platform_metrics.json", snapshot.to_json()).is_ok() {
        println!("full snapshot written to results/live_platform_metrics.json");
    }
    obs.tracer.flush();
}
