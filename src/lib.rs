#![warn(missing_docs)]

//! # crowdselect
//!
//! A task-driven crowd-selection system for crowdsourcing databases — a
//! from-scratch Rust reproduction of *"Crowd-Selection Query Processing in
//! Crowdsourcing Databases: A Task-Driven Approach"* (EDBT 2015).
//!
//! This facade re-exports the workspace crates under stable paths:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`math`] | `crowd-math` | dense linear algebra, optimizers, special functions |
//! | [`obs`] | `crowd-obs` | metrics registry, tracing facade, [`obs::MetricsSnapshot`] |
//! | [`text`] | `crowd-text` | tokenizer, vocabulary, bags of words, similarities |
//! | [`store`] | `crowd-store` | the crowdsourcing database (tasks/workers/assignments/feedback) |
//! | [`select`] | `crowd-select` | the backend-agnostic selection layer: [`select::CrowdSelector`], [`select::SelectorRegistry`], ranking primitives |
//! | [`model`] | `crowd-core` | TDPM: generative model, variational inference, selection |
//! | [`baselines`] | `crowd-baselines` | VSM, DRM (PLSA), TSPM (LDA) and the standard backend registry |
//! | [`sim`] | `crowd-sim` | synthetic Quora / Yahoo / Stack Overflow platforms |
//! | [`platform`] | `crowd-platform` | crowd manager, dispatcher, collector, pipeline |
//! | [`query`] | `crowd-query` | SQL-like crowd-selection query language |
//! | [`eval`] | `crowd-eval` | ACCU / TopK metrics and the experiment harness |
//!
//! ## Quick start
//!
//! ```
//! use crowdselect::prelude::*;
//!
//! // 1. Record some history in the crowd database.
//! let mut db = CrowdDb::new();
//! let ada = db.add_worker("ada");
//! let carl = db.add_worker("carl");
//! for i in 0..6 {
//!     let (text, good, bad) = if i % 2 == 0 {
//!         ("btree index page buffer pool", ada, carl)
//!     } else {
//!         ("gaussian prior posterior variance", carl, ada)
//!     };
//!     let t = db.add_task(text);
//!     db.assign(good, t).unwrap();
//!     db.assign(bad, t).unwrap();
//!     db.record_feedback(good, t, 4.0).unwrap();
//!     db.record_feedback(bad, t, 0.5).unwrap();
//! }
//!
//! // 2. Infer "who knows what" (variational EM).
//! let config = TdpmConfig { num_categories: 2, seed: 7, ..TdpmConfig::default() };
//! let model = TdpmTrainer::new(config).fit(&db).unwrap();
//!
//! // 3. Route a fresh question to the right expert.
//! let question = db.add_task("why does a btree split pages");
//! let projection = model.project_bow(&db.task(question).unwrap().bow);
//! let best = model.select_top_k(&projection, db.worker_ids(), 1);
//! assert_eq!(best[0].worker, ada);
//! ```
//!
//! ## Backend-agnostic selection
//!
//! Every algorithm — TDPM and the baselines alike — implements
//! [`select::CrowdSelector`], so callers can rank workers through a
//! type-erased backend resolved by name:
//!
//! ```
//! use crowdselect::prelude::*;
//!
//! let mut db = CrowdDb::new();
//! let ada = db.add_worker("ada");
//! let carl = db.add_worker("carl");
//! let indexing = db.add_task("btree index page split");
//! db.assign(ada, indexing).unwrap();
//! db.record_feedback(ada, indexing, 4.5).unwrap();
//! let stats = db.add_task("gaussian posterior variance");
//! db.assign(carl, stats).unwrap();
//! db.record_feedback(carl, stats, 4.5).unwrap();
//!
//! // Resolve `USING vsm` through the registry and fit it...
//! let registry = standard_registry();
//! let fitted = registry.fit("vsm", &db, &FitOptions::default()).unwrap();
//! assert_eq!(fitted.backend(), "vsm");
//!
//! // ...or box any selector directly; ranking goes through the same trait.
//! let boxed: Box<dyn CrowdSelector> = Box::new(VsmSelector::fit(&db));
//! let question = db.add_task("why does a btree split pages");
//! let bow = db.task(question).unwrap().bow.clone();
//! let ranked = boxed.rank(&bow, &[ada, carl]);
//! assert_eq!(ranked[0].worker, ada);
//! assert_eq!(
//!     fitted.selector().rank(&bow, &[ada, carl])[0].worker,
//!     ada,
//! );
//! ```

pub use crowd_baselines as baselines;
pub use crowd_core as model;
pub use crowd_eval as eval;
pub use crowd_math as math;
pub use crowd_obs as obs;
pub use crowd_platform as platform;
pub use crowd_query as query;
pub use crowd_select as select;
pub use crowd_sim as sim;
pub use crowd_store as store;
pub use crowd_text as text;

/// The most common imports in one place.
pub mod prelude {
    pub use crowd_baselines::{
        standard_registry, DrmSelector, TdpmSelector, TspmSelector, VsmSelector,
    };
    pub use crowd_core::{TaskProjection, TdpmConfig, TdpmModel, TdpmTrainer};
    pub use crowd_obs::{MetricsSnapshot, Obs};
    pub use crowd_platform::{CrowdManager, ManagerConfig, Pipeline, PipelineConfig};
    pub use crowd_query::QueryEngine;
    pub use crowd_select::{
        CrowdSelector, FitOptions, FittedSelector, RankedWorker, SelectorBackend, SelectorRegistry,
    };
    pub use crowd_sim::{PlatformGenerator, PlatformKind, SimConfig};
    pub use crowd_store::{CrowdDb, SharedCrowdDb, TaskId, WorkerGroup, WorkerId};
    pub use crowd_text::{tokenize_filtered, BagOfWords, Vocabulary};
}
