#!/usr/bin/env sh
# ThreadSanitizer sweep over the concurrency suites (scoring-pool chaos,
# obs snapshot stampede, shard-oracle parallel fit).
#
# Needs the nightly toolchain. The preferred mode instruments std as well
# (`-Zbuild-std`, requires the `rust-src` component — CI installs it):
# uninstrumented std synchronization makes TSan miss the happens-before
# edges inside `Mutex`/`Condvar`/`mpsc` and report false races on their
# internals. Offline hosts without rust-src can set TSAN_NO_BUILD_STD=1,
# which swaps in `-Cunsafe-allow-abi-mismatch=sanitizer` so the workspace
# still links against the pre-built std; in that mode treat any report
# that bottoms out inside raw `std::sync` frames as suspect and rerun
# with build-std before acting on it. Known verified example: on Linux
# std's Mutex is futex-based, so with an uninstrumented std TSan reports
# `ScoringPool::run`'s queue push_back racing `next_batch`'s pop_front
# even though both sit under the same `self.queue.lock()` — the lock's
# happens-before edge is simply invisible. The no-build-std mode is a
# smoke test for lock-free code paths only, not a gate.
set -eu

export CARGO_NET_OFFLINE="${CARGO_NET_OFFLINE:-true}"
TARGET="${TSAN_TARGET:-x86_64-unknown-linux-gnu}"

if [ "${TSAN_NO_BUILD_STD:-0}" = "1" ]; then
    BUILD_STD=""
    ABI_BRIDGE="-Cunsafe-allow-abi-mismatch=sanitizer"
else
    BUILD_STD="-Zbuild-std"
    ABI_BRIDGE=""
fi

# A dedicated target dir keeps TSan-instrumented artifacts from clobbering
# the normal build cache.
export CARGO_TARGET_DIR="${CARGO_TARGET_DIR:-target/tsan}"
export RUSTFLAGS="-Zsanitizer=thread ${ABI_BRIDGE} ${RUSTFLAGS:-}"
# Second-level interleavings: the suites are seeded, so one pass per seed
# is deterministic enough to be a gate.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 history_size=7}"

run() {
    echo "==> [tsan] $*"
    "$@"
}

# shellcheck disable=SC2086  # BUILD_STD is intentionally word-split
tsan_test() {
    run cargo +nightly test ${BUILD_STD} --target "$TARGET" "$@"
}

# Scoring-pool lifecycle stress (persistent pool + cancellation).
for seed in 17 42; do
    POOL_CHAOS_SEED="$seed" tsan_test -q -p crowdselect --test pool_chaos
done

# Obs snapshot stampede (lock-light counters under concurrent snapshots).
tsan_test -q -p crowd-obs --test stress

# Shard oracle (shard-parallel fit vs serial bit-identity).
tsan_test -q -p crowd-core --test shard_oracle

echo "==> [tsan] all green"
