#!/usr/bin/env sh
# The full local CI gate — exactly what .github/workflows/ci.yml runs.
#
# Works offline: every step passes CARGO_NET_OFFLINE so a warmed-up
# vendor/registry cache (or a fully local path-dependency workspace) is
# enough; nothing here needs network access.
set -eu

export CARGO_NET_OFFLINE="${CARGO_NET_OFFLINE:-true}"
export CARGO_TERM_COLOR="${CARGO_TERM_COLOR:-always}"

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings

# Static analysis gate: crowd-lint (lexical rules + call-graph determinism
# and bounded-wait packs) must report zero unsuppressed findings — the
# versioned report lands in results/LINT_10.json — and the seeded fixture
# tree must still trip EVERY rule pack individually. A lint pass that
# stops failing on known-bad input is a broken gate, not a clean tree.
mkdir -p results
run cargo run -q -p crowd-lint -- --json results/LINT_10.json
for pack in lexical det wait meta; do
    echo "==> crowd-lint fixture must fail (--pack $pack)"
    if cargo run -q -p crowd-lint -- --root crates/lint/fixtures --pack "$pack" --quiet; then
        echo "crowd-lint fixture passed pack '$pack'; the lint gate is broken" >&2
        exit 1
    fi
done

run cargo build --release
run cargo test -q --workspace --no-fail-fast

# Plan snapshots: every statement form must lower to exactly the committed
# EXPLAIN rendering (crates/query/tests/fixtures/explain/). Drift means the
# plan contract changed — regenerate with UPDATE_EXPLAIN_FIXTURES=1 and
# review the diff.
run cargo test -q -p crowd-query --test explain_golden

# Invariant validator: run the core suite with the `validate` feature so the
# debug-build Validate hooks (E-step/M-step boundaries, feedback ingest) are
# exercised explicitly even if the profile ever stops defaulting to debug.
run cargo test -q -p crowd-core --features validate

# Fault matrix: the lifecycle recovery counters must reproduce exactly
# under every seed (see crates/platform/tests/fault_matrix.rs).
for seed in 17 42 99; do
    run env FAULT_SEED="$seed" cargo test -q -p crowd-platform --test fault_matrix
done

# Query-layer chaos matrix: seeded fault injection + a mixed
# deadline/cancel/budget/admission schedule must stay typed, accounted and
# bit-identical where nothing fired (see tests/chaos.rs; report lands in
# results/CHAOS_7.json).
for seed in 17 42 99; do
    run env CHAOS_SEED="$seed" cargo test -q -p crowdselect --test chaos
done

# Pool lifecycle stress: concurrent queries over the persistent scoring
# pool with mid-flight cancellation/deadline/budget firing must stay
# typed, leak no OS threads, and reconcile every query/* counter exactly
# (see tests/pool_chaos.rs).
for seed in 17 42 99; do
    run env POOL_CHAOS_SEED="$seed" cargo test -q -p crowdselect --test pool_chaos
done

# Bench smoke: the dense serving path must beat the serial baseline by the
# speedup gate, and thread scaling over the persistent scoring pool must
# hold (strict t8 < t1 on multi-core hosts; no-regression bounds on
# single-core ones). Report lands in results/BENCH_8.json (see
# crates/bench/src/bin/selection_smoke.rs).
run cargo run --release -p crowd-bench --bin selection_smoke

# Sharded-fit smoke: the 8-shard fit must be bit-identical to the 1-shard
# fit (ELBO traces compared bitwise), beat it ≥3x on multi-core hosts
# (no-regression bound on single-core ones), and the million-worker tier
# must train inside the peak-RSS ceiling. Report lands in
# results/BENCH_9.json (see crates/bench/src/bin/fit_smoke.rs).
run cargo run --release -p crowd-bench --bin fit_smoke

echo "==> ci.sh: all green"
