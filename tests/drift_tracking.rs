//! Skill drift: the case for incremental updates (paper Section 1,
//! "Incremental Crowd-Selection").
//!
//! Workers' real skills change over time. A model that keeps folding new
//! feedback into its posteriors (Algorithm 3's incremental path) must track
//! the drift; a frozen model trained once on stale history must fall
//! behind. This test constructs exactly that scenario.

use crowdselect::model::generative::{generate, GenerativeConfig};
use crowdselect::model::{ModelParams, TdpmConfig, TdpmTrainer};
use crowdselect::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sharp 3-topic parameters over 30 terms.
fn planted_params() -> ModelParams {
    let (k, v) = (3, 30);
    let mut p = ModelParams::neutral(k, v);
    for kk in 0..k {
        for vv in 0..v {
            p.beta[(kk, vv)] = if vv / 10 == kk { 0.085 } else { 0.0075 };
        }
        let s: f64 = p.beta.row(kk).iter().sum();
        for vv in 0..v {
            p.beta[(kk, vv)] /= s;
        }
    }
    p.tau = 0.3;
    p
}

#[test]
fn incremental_updates_track_skill_drift_better_than_a_frozen_model() {
    let params = planted_params();
    let gen_cfg = GenerativeConfig {
        num_workers: 10,
        num_tasks: 120,
        tokens_per_task: 20,
        workers_per_task: 4,
    };
    let mut rng = StdRng::seed_from_u64(11);

    // Phase 1: history under the ORIGINAL skills; train both models on it.
    let phase1 = generate(&params, &gen_cfg, &mut rng).unwrap();
    let fit_cfg = TdpmConfig {
        num_categories: 3,
        max_em_iters: 25,
        seed: 5,
        // Skills are about to drift: discount stale evidence geometrically
        // (effective memory ≈ 1/(1−ρ) ≈ 33 observations) so the incremental
        // posterior re-centers on the phase-2 feedback.
        feedback_forgetting: 0.97,
        ..TdpmConfig::default()
    };
    let (frozen, _) = TdpmTrainer::new(fit_cfg.clone())
        .fit_training_set(&phase1.training)
        .unwrap();
    let mut tracking = frozen.clone();

    // Drift: worker skills flip — each worker's strongest and weakest
    // categories swap. Expertise migrates wholesale.
    let drifted_skills: Vec<Vec<f64>> = phase1
        .worker_skills
        .iter()
        .map(|w| {
            let mut s: Vec<f64> = w.as_slice().to_vec();
            let (mut hi, mut lo) = (0, 0);
            for (idx, &x) in s.iter().enumerate() {
                if x > s[hi] {
                    hi = idx;
                }
                if x < s[lo] {
                    lo = idx;
                }
            }
            s.swap(hi, lo);
            s
        })
        .collect();

    // Phase 2: feedback arrives under the DRIFTED skills. The tracking
    // model folds it in incrementally; the frozen model ignores it. The
    // drift period lasts long enough (3 batches) for the new evidence to
    // outweigh the stale phase-1 history in the posterior.
    for _ in 0..3 {
        let phase2 = generate(&params, &gen_cfg, &mut rng).unwrap();
        for task in phase2.training.tasks() {
            let projection = tracking.project_words(&task.words);
            for &(i, _) in &task.scores {
                // Re-score the pair under the drifted skills.
                let c = &phase2.task_categories[task.task.index()];
                let drifted_quality: f64 = drifted_skills[i]
                    .iter()
                    .zip(c.as_slice())
                    .map(|(a, b)| a * b)
                    .sum();
                let w = phase2.training.worker_id(i);
                tracking.add_worker(w);
                tracking
                    .record_feedback(w, &projection, drifted_quality)
                    .unwrap();
            }
        }
    }

    // Phase 3: fresh evaluation tasks under the drifted skills. Which model
    // picks the (new) best answerer?
    let phase3 = generate(&params, &gen_cfg, &mut rng).unwrap();
    let mut frozen_hits = 0usize;
    let mut tracking_hits = 0usize;
    let mut total = 0usize;
    for task in phase3.training.tasks() {
        if task.scores.len() < 2 {
            continue;
        }
        let c = &phase3.task_categories[task.task.index()];
        let candidates: Vec<WorkerId> = task
            .scores
            .iter()
            .map(|&(i, _)| phase3.training.worker_id(i))
            .collect();
        // Ground truth under drifted skills.
        let right = task
            .scores
            .iter()
            .map(|&(i, _)| {
                let q: f64 = drifted_skills[i]
                    .iter()
                    .zip(c.as_slice())
                    .map(|(a, b)| a * b)
                    .sum();
                (phase3.training.worker_id(i), q)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;

        let pf = frozen.project_words(&task.words);
        let pt = tracking.project_words(&task.words);
        if frozen.select_top_k(&pf, candidates.clone(), 1)[0].worker == right {
            frozen_hits += 1;
        }
        if tracking.select_top_k(&pt, candidates, 1)[0].worker == right {
            tracking_hits += 1;
        }
        total += 1;
    }

    let frozen_acc = frozen_hits as f64 / total as f64;
    let tracking_acc = tracking_hits as f64 / total as f64;
    assert!(
        tracking_acc > frozen_acc + 0.1,
        "incremental model must track the drift: tracking {tracking_acc:.3} \
         vs frozen {frozen_acc:.3} over {total} tasks"
    );
    // ~4 candidates per task → random picking scores ≈ 0.25.
    assert!(
        tracking_acc > 0.4,
        "tracking model should stay clearly above chance after drift: {tracking_acc:.3}"
    );
}
