//! Pool-lifecycle stress: concurrent query streams over the persistent
//! scoring pool, with mid-flight cancellation and deadline churn.
//!
//! Complements `chaos.rs` (which injects storage faults into a single
//! engine): here the chaos is *concurrency* — several OS threads hammer
//! the one global [`ScoringPool`] with engine queries, pooled wide-matrix
//! scans and guard churn at once, seeded and deterministic in schedule
//! (`POOL_CHAOS_SEED`, default 17; outcome *timing* races are the point
//! and every race winner is asserted sound). Pinned properties:
//!
//! 1. **Typed outcomes only.** Every query returns `Ok` or a typed
//!    [`QueryError`]; no panics, no aborts.
//! 2. **No silent corruption.** Complete (non-degraded) results are
//!    bit-identical to the single-threaded clean baseline, even when a
//!    cancellation lost its race mid-flight. Stopped pooled scans are
//!    sound: a top-k of a scanned prefix that never exceeds the budget.
//! 3. **No leaked threads.** The pool's workers survive (`live_workers`
//!    equals `workers` before and after) and the *process* thread count
//!    returns to its pre-stress value — per-call spawns would show up
//!    right here.
//! 4. **Accounting.** The shared `query/*` counters reconcile exactly
//!    with the outcomes every thread observed.
//!
//! [`ScoringPool`]: crowdselect::math::ScoringPool

use crowdselect::math::ScoringPool;
use crowdselect::model::{SkillMatrix, MIN_POOL_CHUNK_ROWS};
use crowdselect::obs::{Obs, Registry, Tracer};
use crowdselect::query::{
    CancelToken, QueryContext, QueryEngine, QueryError, QueryOutput, WorkerTable,
};
use crowdselect::store::WorkerId;
use std::sync::Arc;
use std::time::Duration;

const STRESS_THREADS: usize = 8;
const ITERS_PER_THREAD: usize = 16;

const BACKENDS: &[&str] = &["tdpm", "vsm", "drm", "tspm"];
const SELECT_TEXTS: &[&str] = &[
    "btree page split index",
    "gaussian posterior variance",
    "buffer pool write amplification",
    "variational inference prior",
];

fn chaos_seed() -> u64 {
    match std::env::var("POOL_CHAOS_SEED") {
        Ok(s) => s.parse().expect("POOL_CHAOS_SEED must be a u64"),
        Err(_) => 17,
    }
}

/// SplitMix64 — deterministic per-thread schedule from the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Same two-specialist fixture as `chaos.rs`.
fn seeded_engine() -> QueryEngine {
    let mut e = QueryEngine::new();
    e.run("INSERT WORKER 'dba'").unwrap();
    e.run("INSERT WORKER 'stat'").unwrap();
    e.run("INSERT WORKER 'generalist'").unwrap();
    let tasks = [
        ("btree page split index buffer disk", 0, 1),
        ("gaussian prior posterior likelihood variance", 1, 0),
        ("btree range scan clustered index", 0, 2),
        ("variational bayes gaussian inference", 1, 2),
        ("btree write amplification buffer pool", 0, 1),
        ("posterior variance of a gaussian", 1, 0),
    ];
    for (i, (text, good, meh)) in tasks.iter().enumerate() {
        e.run(&format!("INSERT TASK '{text}'")).unwrap();
        e.run(&format!("ASSIGN WORKER {good} TO TASK {i}")).unwrap();
        e.run(&format!("ASSIGN WORKER {meh} TO TASK {i}")).unwrap();
        e.run(&format!("FEEDBACK WORKER {good} ON TASK {i} SCORE 4"))
            .unwrap();
        e.run(&format!("FEEDBACK WORKER {meh} ON TASK {i} SCORE 2"))
            .unwrap();
    }
    e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
    e
}

fn select_statements() -> Vec<String> {
    let mut stmts = Vec::new();
    for backend in BACKENDS {
        for (i, text) in SELECT_TEXTS.iter().enumerate() {
            let k = 1 + i % 3;
            stmts.push(format!(
                "SELECT WORKERS FOR TASK '{text}' LIMIT {k} USING {backend}"
            ));
        }
    }
    stmts
}

fn assert_tables_bit_equal(got: &WorkerTable, want: &WorkerTable, ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: row count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.worker, w.worker, "{ctx}: worker order");
        assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "{ctx}: score bits for {}",
            g.worker
        );
    }
}

/// Wide shared matrix: every 8-thread scan splits into pooled chunks.
fn wide_matrix() -> (SkillMatrix, Vec<(WorkerId, usize)>) {
    let n = u32::try_from(4 * MIN_POOL_CHUNK_ROWS).unwrap();
    let mut m = SkillMatrix::new(2);
    for w in 0..n {
        let x = f64::from(w);
        m.upsert(
            WorkerId(w),
            &[(x * 0.713).sin(), (x * 0.291).cos()],
            &[0.1, 0.1],
        );
    }
    let resolved = m.resolve_all();
    (m, resolved)
}

fn os_thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

#[derive(Default)]
struct Tally {
    ok: u64,
    degraded: u64,
    cancelled: u64,
    deadline: u64,
    budget: u64,
}

impl Tally {
    fn merge(&mut self, other: &Tally) {
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.cancelled += other.cancelled;
        self.deadline += other.deadline;
        self.budget += other.budget;
    }
}

#[allow(clippy::too_many_lines)]
#[test]
fn concurrent_pool_stress_is_sound_leak_free_and_accounted() {
    let seed = chaos_seed();
    let stmts = Arc::new(select_statements());

    // Clean single-threaded baseline for bit-identity.
    let mut clean = seeded_engine();
    let baseline: Arc<Vec<WorkerTable>> = Arc::new(
        stmts
            .iter()
            .map(|s| {
                let QueryOutput::Workers(t) = clean.run(s).unwrap() else {
                    panic!("expected workers for {s}");
                };
                t
            })
            .collect(),
    );

    // Shared pooled-scan fixture and its oracle.
    let (matrix, resolved) = wide_matrix();
    let shared = Arc::new((matrix, resolved));
    let lambda = [0.9, -1.7];
    let oracle = Arc::new(shared.0.select_mean(&lambda, &shared.1, 10, 1));

    // Warm the pool *before* the thread snapshot so its lazily-spawned
    // workers don't read as leaks.
    let pool = ScoringPool::global();
    let stats_before = pool.stats();
    assert_eq!(stats_before.live_workers, stats_before.workers);
    let threads_before = os_thread_count();

    let metrics = Arc::new(Registry::new());
    let handles: Vec<_> = (0..STRESS_THREADS)
        .map(|t| {
            let stmts = Arc::clone(&stmts);
            let baseline = Arc::clone(&baseline);
            let shared = Arc::clone(&shared);
            let oracle = Arc::clone(&oracle);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                let mut e = seeded_engine();
                e.set_obs(Obs::new(metrics, Tracer::noop()));
                let mut rng = Rng(seed ^ (t as u64).wrapping_mul(0x9e37_79b9));
                let mut tally = Tally::default();
                for i in 0..ITERS_PER_THREAD {
                    let si = (t + i * STRESS_THREADS) % stmts.len();
                    let stmt = &stmts[si];
                    match rng.next() % 6 {
                        // Clean and armed-but-generous: Ok, bit-identical.
                        0 | 1 => {
                            let ctx = QueryContext::unbounded()
                                .with_deadline(Duration::from_secs(3600))
                                .with_cancellation(CancelToken::new())
                                .with_row_budget(1 << 40);
                            let QueryOutput::Workers(table) = e.run_with(stmt, &ctx).unwrap()
                            else {
                                panic!("{stmt}: expected workers");
                            };
                            assert!(!table.degraded, "{stmt}: nothing fired");
                            assert_tables_bit_equal(&table, &baseline[si], stmt);
                            tally.ok += 1;
                        }
                        // Pre-cancelled: typed hard stop.
                        2 => {
                            let token = CancelToken::new();
                            token.cancel();
                            let ctx = QueryContext::unbounded().with_cancellation(token);
                            match e.run_with(stmt, &ctx) {
                                Err(QueryError::Cancelled) => tally.cancelled += 1,
                                other => panic!("{stmt}: expected Cancelled, got {other:?}"),
                            }
                        }
                        // Expired deadline: typed hard stop.
                        3 => {
                            let ctx = QueryContext::unbounded().with_deadline(Duration::ZERO);
                            match e.run_with(stmt, &ctx) {
                                Err(QueryError::DeadlineExceeded) => tally.deadline += 1,
                                other => panic!("{stmt}: expected Deadline, got {other:?}"),
                            }
                        }
                        // Zero budget, error policy: typed hard stop.
                        4 => {
                            let ctx = QueryContext::unbounded().with_row_budget(0);
                            match e.run_with(stmt, &ctx) {
                                Err(QueryError::BudgetExhausted) => tally.budget += 1,
                                other => panic!("{stmt}: expected Budget, got {other:?}"),
                            }
                        }
                        // Mid-flight cancellation: a canceller thread races
                        // the query; both race winners are sound.
                        _ => {
                            let token = CancelToken::new();
                            let racer = token.clone();
                            let delay = Duration::from_micros(rng.next() % 300);
                            let canceller = std::thread::spawn(move || {
                                std::thread::sleep(delay);
                                racer.cancel();
                            });
                            let ctx = QueryContext::unbounded().with_cancellation(token);
                            match e.run_with(stmt, &ctx) {
                                Ok(QueryOutput::Workers(table)) => {
                                    assert!(!table.degraded, "{stmt}: mid-flight win");
                                    assert_tables_bit_equal(&table, &baseline[si], stmt);
                                    tally.ok += 1;
                                }
                                Err(QueryError::Cancelled) => tally.cancelled += 1,
                                other => panic!("{stmt}: mid-flight outcome {other:?}"),
                            }
                            canceller.join().expect("canceller");
                        }
                    }

                    // Every iteration also drives a pooled wide scan with a
                    // seeded budget: exhausted guards must stop soundly,
                    // generous ones must reproduce the oracle bits.
                    let budget = if rng.next().is_multiple_of(2) {
                        1 << 40
                    } else {
                        // Somewhere inside the scan: chunks race the budget.
                        MIN_POOL_CHUNK_ROWS as u64 + rng.next() % (2 * MIN_POOL_CHUNK_ROWS as u64)
                    };
                    let ctx = QueryContext::unbounded().with_row_budget(budget);
                    let partial =
                        shared
                            .0
                            .select_mean_guarded(&lambda, &shared.1, 10, 8, &ctx.guard());
                    if partial.complete {
                        assert_eq!(partial.scanned, shared.1.len(), "complete scans scan all");
                        assert_eq!(partial.ranked.len(), oracle.len());
                        for (g, o) in partial.ranked.iter().zip(oracle.iter()) {
                            assert_eq!(g.worker, o.worker, "pooled scan order");
                            assert_eq!(g.score.to_bits(), o.score.to_bits(), "pooled scan bits");
                        }
                    } else {
                        assert!(
                            (partial.scanned as u64) <= budget,
                            "stopped scan overdrew: {} > {budget}",
                            partial.scanned
                        );
                        assert!(partial.ranked.len() <= 10, "prefix top-k is bounded");
                    }
                }
                tally
            })
        })
        .collect();

    let mut tally = Tally::default();
    for h in handles {
        tally.merge(&h.join().expect("stress thread panicked"));
    }

    // No leaked threads: the pool kept its workers, and every transient
    // thread (stress + cancellers) is gone.
    let stats_after = pool.stats();
    assert_eq!(stats_after.workers, stats_before.workers, "pool resized");
    assert_eq!(
        stats_after.live_workers, stats_after.workers,
        "a pool worker died under stress"
    );
    let threads_after = os_thread_count();
    assert_eq!(
        threads_after, threads_before,
        "process thread count drifted — something leaked a thread"
    );

    // Exact query/* reconciliation against what the threads observed.
    let snap = metrics.snapshot();
    let counter = |name: &str| snap.counter("query", name).unwrap_or(0);
    assert_eq!(counter("cancelled"), tally.cancelled);
    assert_eq!(counter("deadline_exceeded"), tally.deadline);
    assert_eq!(counter("budget_exhausted"), tally.budget);
    assert_eq!(counter("degraded"), tally.degraded);
    assert_eq!(
        tally.ok + tally.degraded + tally.cancelled + tally.deadline + tally.budget,
        (STRESS_THREADS * ITERS_PER_THREAD) as u64,
        "every engine query accounted"
    );
    assert!(tally.ok > 0, "no clean query survived — schedule broken");
    assert!(
        stats_after.tasks_enqueued > stats_before.tasks_enqueued,
        "the wide scans must actually exercise the pool"
    );
}
