//! Qualitative reproduction checks: the *shapes* of the paper's findings
//! must hold on the synthetic platforms (Section 7.3 conclusions).

use crowdselect::baselines::{CrowdSelector, DrmSelector, TdpmSelector, TspmSelector, VsmSelector};
use crowdselect::eval::protocol::EvalProtocol;
use crowdselect::prelude::*;

/// Fits all four selectors at a given K.
fn fit_all(db: &CrowdDb, k: usize) -> Vec<Box<dyn CrowdSelector>> {
    vec![
        Box::new(VsmSelector::fit(db)),
        Box::new(TspmSelector::fit(db, k, 9)),
        Box::new(DrmSelector::fit(db, k, 9)),
        Box::new(TdpmSelector::fit(db, k, 9).unwrap()),
    ]
}

#[test]
fn tdpm_outperforms_all_baselines_on_quora() {
    // Paper Section 7.3.4: "TDPM consistently attains high crowd-selection
    // quality in terms of both precision and recall" vs VSM/TSPM/DRM.
    let platform = PlatformGenerator::new(SimConfig::quora(0.06, 77)).generate();
    let db = &platform.db;
    let selectors = fit_all(db, 6);
    let group = WorkerGroup::extract(db, 1);
    let protocol = EvalProtocol::new(200, 13);
    let questions = protocol.test_questions(db, &group);
    assert!(questions.len() >= 50);

    let precisions: Vec<(String, f64)> = selectors
        .iter()
        .map(|s| {
            (
                s.name().to_owned(),
                protocol.evaluate(s.as_ref(), &questions).precision(),
            )
        })
        .collect();
    let tdpm = precisions.iter().find(|(n, _)| n == "TDPM").unwrap().1;
    for (name, p) in &precisions {
        if name != "TDPM" {
            assert!(
                tdpm > p - 1e-9,
                "TDPM ({tdpm:.3}) must match or beat {name} ({p:.3}); all: {precisions:?}"
            );
        }
    }
    // And strictly beat at least the weakest baseline by a real margin.
    let weakest = precisions
        .iter()
        .filter(|(n, _)| n != "TDPM")
        .map(|&(_, p)| p)
        .fold(f64::MAX, f64::min);
    assert!(
        tdpm > weakest + 0.02,
        "TDPM {tdpm:.3} vs weakest baseline {weakest:.3}"
    );
}

#[test]
fn precision_rises_with_worker_activity_threshold() {
    // Paper: "the precision of all the algorithms increases when we select
    // the crowd from more active workers" (Section 7.3.1) — checked for
    // TDPM between the loosest and tightest groups.
    let platform = PlatformGenerator::new(SimConfig::stack_overflow(0.06, 5)).generate();
    let db = &platform.db;
    let tdpm = TdpmSelector::fit(db, 6, 2).unwrap();
    let protocol = EvalProtocol::new(200, 11);

    let loose = WorkerGroup::extract(db, 1);
    let tight = WorkerGroup::extract(db, 8);
    assert!(tight.len() >= 3, "tight group nonempty: {}", tight.len());
    let p_loose = protocol
        .evaluate(&tdpm, &protocol.test_questions(db, &loose))
        .precision();
    let p_tight = protocol
        .evaluate(&tdpm, &protocol.test_questions(db, &tight))
        .precision();
    assert!(
        p_tight >= p_loose - 0.05,
        "precision should not degrade for active workers: loose {p_loose:.3}, tight {p_tight:.3}"
    );
}

#[test]
fn coverage_and_group_size_shrink_with_threshold() {
    // Figures 3, 5, 7: group size falls fast with the participation
    // threshold while task coverage stays high.
    for cfg in [
        SimConfig::quora(0.06, 1),
        SimConfig::yahoo(0.06, 1),
        SimConfig::stack_overflow(0.06, 1),
    ] {
        let platform = PlatformGenerator::new(cfg).generate();
        let db = &platform.db;
        let g1 = WorkerGroup::extract(db, 1);
        let g5 = WorkerGroup::extract(db, 5);
        assert!(g5.len() < g1.len(), "group shrinks");
        let c1 = g1.coverage(db);
        let c5 = g5.coverage(db);
        assert!(c5 <= c1 + 1e-12);
        // The paper's headline: a small active core still covers most tasks.
        assert!(
            c5 > 0.5,
            "{}: active core coverage {c5:.3} with {}/{} workers",
            platform.config.kind.name(),
            g5.len(),
            g1.len()
        );
    }
}

#[test]
fn top2_recall_dominates_top1() {
    let platform = PlatformGenerator::new(SimConfig::yahoo(0.05, 3)).generate();
    let db = &platform.db;
    let selectors = fit_all(db, 5);
    let group = WorkerGroup::extract(db, 1);
    let protocol = EvalProtocol::new(150, 2);
    let questions = protocol.test_questions(db, &group);
    for s in &selectors {
        let acc = protocol.evaluate(s.as_ref(), &questions);
        assert!(acc.top_k(2) >= acc.top_k(1));
        assert!(acc.top_k(2) <= 1.0 && acc.top_k(1) >= 0.0);
    }
}

#[test]
fn tdpm_advantage_survives_bootstrap_resampling() {
    // The TDPM-vs-baseline gap must be statistically stable, not a lucky
    // sample: paired bootstrap over the same test questions.
    use crowdselect::eval::significance::paired_bootstrap;
    let platform = PlatformGenerator::new(SimConfig::quora(0.06, 41)).generate();
    let db = &platform.db;
    let tdpm = TdpmSelector::fit(db, 6, 4).unwrap();
    let drm = DrmSelector::fit(db, 6, 4);
    let group = WorkerGroup::extract(db, 1);
    let protocol = EvalProtocol::new(250, 8);
    let questions = protocol.test_questions(db, &group);
    assert!(questions.len() >= 40, "questions: {}", questions.len());

    let scores_tdpm = protocol.evaluate_scores(&tdpm, &questions);
    let scores_drm = protocol.evaluate_scores(&drm, &questions);
    let result = paired_bootstrap(&scores_tdpm, &scores_drm, 1000, 3);
    assert!(
        result.prob_a_beats_b > 0.95,
        "TDPM should beat DRM in ≥95% of resamples: {result:?}"
    );
    assert!(
        result.diff_ci.0 > 0.0,
        "95% CI of the gap should exclude zero: {result:?}"
    );
}

#[test]
fn multinomial_baselines_cannot_express_magnitude() {
    // The paper's core criticism (Section 1): multinomial skills normalize
    // to 1, so a prolific generalist and a weak generalist look identical.
    // Verify the structural property on our DRM/TSPM implementations.
    let platform = PlatformGenerator::new(SimConfig::quora(0.04, 19)).generate();
    let db = &platform.db;
    let drm = DrmSelector::fit(db, 5, 1);
    let tspm = TspmSelector::fit(db, 5, 1);
    for w in db.worker_ids().take(30) {
        if let Some(p) = drm.profile(w) {
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "DRM profile sums to 1");
        }
        if let Some(p) = tspm.profile(w) {
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "TSPM profile sums to 1");
        }
    }
    // TDPM skills are NOT normalized: magnitudes differ across workers.
    let tdpm = TdpmSelector::fit(db, 5, 1).unwrap();
    let norms: Vec<f64> = db
        .worker_ids()
        .take(30)
        .filter_map(|w| tdpm.model().skill(w).map(|s| s.mean.norm()))
        .collect();
    let min = norms.iter().copied().fold(f64::MAX, f64::min);
    let max = norms.iter().copied().fold(f64::MIN, f64::max);
    assert!(
        max > min * 1.5,
        "TDPM skill magnitudes vary: min {min:.3}, max {max:.3}"
    );
}
