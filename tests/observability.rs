//! Integration: one shared [`Obs`] handle threaded through the WAL, the
//! trainer, the model, the pipeline and the query engine records non-zero
//! metrics for every layer, and the countable fields are deterministic
//! per seed.

use crowdselect::obs::{MemorySink, MetricsSnapshot, Registry, Tracer};
use crowdselect::platform::{Pipeline, PipelineConfig};
use crowdselect::prelude::*;
use crowdselect::store::LoggedDb;
use std::sync::Arc;
use std::time::Duration;

const STREAM: [&str; 3] = [
    "btree page buffer question",
    "gaussian variance question",
    "btree index split question",
];

/// Seeds history through a WAL, runs the pipeline over [`STREAM`], and
/// returns the shared snapshot plus the recorded trace events.
fn observed_run(seed: u64) -> (MetricsSnapshot, Vec<crowdselect::obs::TraceEvent>) {
    let sink = Arc::new(MemorySink::new());
    let obs = Obs::new(Arc::new(Registry::new()), Tracer::new(sink.clone()));

    static RUN: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let run = RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!("crowd-obs-int-{}-{run}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut logged = LoggedDb::open(&path).unwrap();
    logged.set_obs(&obs);
    let dba = logged.add_worker("dba").unwrap();
    let stat = logged.add_worker("stat").unwrap();
    for i in 0..8 {
        let (text, good, bad) = if i % 2 == 0 {
            ("btree page split index buffer disk", dba, stat)
        } else {
            ("gaussian prior posterior likelihood variance", stat, dba)
        };
        let t = logged.add_task(text).unwrap();
        logged.assign(good, t).unwrap();
        logged.assign(bad, t).unwrap();
        logged.record_feedback(good, t, 4.0).unwrap();
        logged.record_feedback(bad, t, 0.5).unwrap();
    }
    let db = logged.into_db();
    let _ = std::fs::remove_file(&path);

    let config = PipelineConfig {
        top_k: 1,
        tdpm: TdpmConfig {
            num_categories: 2,
            max_em_iters: 15,
            seed,
            ..TdpmConfig::default()
        },
        answer_timeout: Duration::from_secs(5),
        obs: obs.clone(),
        ..PipelineConfig::default()
    };
    let answer_fn = Arc::new(|w: WorkerId, d: &crowdselect::platform::events::Dispatch| {
        format!("answer to {} from {w}", d.task)
    });
    let pipeline = Pipeline::start(db, config, answer_fn).unwrap();
    let report = pipeline.run(&STREAM, &|_, _, _| 1.0);
    assert_eq!(report.tasks_submitted, STREAM.len());
    pipeline.shutdown();
    (obs.snapshot(), sink.take())
}

#[test]
fn pipeline_run_records_every_layer() {
    let (snap, events) = observed_run(7);

    // Platform lifecycle counters mirror the run (top_k = 1, everyone
    // answers): 3 dispatches, 3 answers, 3 feedback applications.
    let n = STREAM.len() as u64;
    assert_eq!(snap.counter("platform", "tasks_submitted"), Some(n));
    assert_eq!(snap.counter("platform", "dispatches_delivered"), Some(n));
    assert_eq!(snap.counter("platform", "answers_collected"), Some(n));
    assert_eq!(snap.counter("platform", "feedback_applied"), Some(n));
    assert_eq!(snap.counter("platform", "abandonments"), Some(0));
    assert_eq!(snap.gauge("platform", "degraded_epochs"), Some(0.0));

    // Dispatch→answer latency: one observation per accepted answer.
    let latency = snap
        .histogram("platform", "dispatch_to_answer_seconds")
        .expect("latency histogram present");
    assert_eq!(latency.count, n);
    assert!(latency.sum > 0.0, "answers cannot arrive in zero time");

    // Trainer: one fit, at least one epoch, each epoch timed, ELBO finite.
    assert_eq!(snap.counter("trainer", "fits"), Some(1));
    let epochs = snap.counter("trainer", "epochs").expect("epoch counter");
    assert!(epochs >= 1);
    for phase in [
        "estep_task_seconds",
        "estep_worker_seconds",
        "mstep_seconds",
    ] {
        let h = snap.histogram("trainer", phase).expect("phase histogram");
        assert_eq!(h.count, epochs, "{phase} observed once per epoch");
    }
    let elbo = snap.gauge("trainer", "elbo").expect("elbo gauge");
    assert!(elbo.is_finite() && elbo < 0.0, "log-evidence bound: {elbo}");

    // Model: each submitted task is projected (Algorithm 3 latency), and
    // each feedback score triggers an incremental posterior update.
    let projections = snap.counter("model", "projections").expect("projections");
    assert!(projections >= n, "at least one projection per stream task");
    assert_eq!(snap.counter("model", "incremental_updates"), Some(n));
    let proj = snap
        .histogram("model", "projection_seconds")
        .expect("projection latency");
    assert_eq!(proj.count, projections);

    // WAL: the seeding history went through the log. 2 workers + 8 tasks +
    // 16 assigns + 16 feedback scores = 42 appended records.
    assert_eq!(snap.counter("wal", "records_appended"), Some(42));
    assert_eq!(snap.counter("wal", "recovery_skipped"), Some(0));
    let append = snap.histogram("wal", "append_seconds").expect("wal timing");
    assert_eq!(append.count, 42);

    // Tracing: per-epoch trainer events and one pipeline run event.
    let epoch_events = events
        .iter()
        .filter(|e| e.component == "trainer" && e.name == "epoch")
        .count() as u64;
    assert_eq!(epoch_events, epochs);
    assert_eq!(
        events
            .iter()
            .filter(|e| e.component == "platform" && e.name == "run")
            .count(),
        1
    );

    // The snapshot round-trips through its JSON form.
    let back: MetricsSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn countable_metrics_are_deterministic_per_seed() {
    let (a, _) = observed_run(42);
    let (b, _) = observed_run(42);

    // Wall-clock sums differ run to run; everything countable must not.
    assert_eq!(a.counters, b.counters, "counters are seed-deterministic");
    let counts = |s: &MetricsSnapshot| {
        s.histograms
            .iter()
            .map(|h| (h.component.clone(), h.name.clone(), h.count))
            .collect::<Vec<_>>()
    };
    assert_eq!(counts(&a), counts(&b), "observation counts match");
}

#[test]
fn query_engine_records_selection_latency_by_backend() {
    let obs = Obs::new(Arc::new(Registry::new()), Tracer::noop());
    let mut engine = QueryEngine::new();
    engine.set_obs(obs.clone());

    engine.run("INSERT WORKER 'dba'").unwrap();
    engine.run("INSERT WORKER 'stat'").unwrap();
    let tasks = [
        ("btree page split index buffer disk", 0, 1),
        ("gaussian prior posterior likelihood variance", 1, 0),
        ("btree range scan clustered index", 0, 1),
        ("variational bayes gaussian inference", 1, 0),
    ];
    for (i, (text, good, bad)) in tasks.iter().enumerate() {
        engine.run(&format!("INSERT TASK '{text}'")).unwrap();
        engine
            .run(&format!("ASSIGN WORKER {good} TO TASK {i}"))
            .unwrap();
        engine
            .run(&format!("ASSIGN WORKER {bad} TO TASK {i}"))
            .unwrap();
        engine
            .run(&format!("FEEDBACK WORKER {good} ON TASK {i} SCORE 4"))
            .unwrap();
        engine
            .run(&format!("FEEDBACK WORKER {bad} ON TASK {i} SCORE 0.5"))
            .unwrap();
    }
    engine.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
    engine
        .run("SELECT WORKERS FOR TASK 'btree index buffer' LIMIT 1")
        .unwrap();
    engine
        .run("SELECT WORKERS FOR TASK 'btree index buffer' LIMIT 1 USING vsm")
        .unwrap();

    let snap = obs.snapshot();
    assert_eq!(snap.counter("query", "selects"), Some(2));
    let train = snap.histogram("query", "train_seconds").expect("train");
    assert_eq!(train.count, 1);
    for backend in ["tdpm", "vsm"] {
        let h = snap
            .histogram("query", &format!("select_seconds_{backend}"))
            .unwrap_or_else(|| panic!("missing select_seconds_{backend}"));
        assert_eq!(h.count, 1, "{backend} timed once");
    }

    // Per-node executor timers: both SELECTs walk the same six-node plan
    // (Scan → Bind → Project → Score → TopK → Merge), so every node kind is
    // timed exactly twice.
    for kind in ["scan", "bind", "project", "score", "topk", "merge"] {
        let h = snap
            .histogram("query", &format!("plan_node_seconds_{kind}"))
            .unwrap_or_else(|| panic!("missing plan_node_seconds_{kind}"));
        assert_eq!(h.count, 2, "{kind} node timed once per SELECT");
    }
}

#[test]
fn query_engine_accounts_admission_outcomes() {
    let obs = Obs::new(Arc::new(Registry::new()), Tracer::noop());
    let mut engine = QueryEngine::new();
    engine.set_obs(obs.clone());
    engine.run("INSERT WORKER 'dba'").unwrap();
    engine.set_admission(Some(crowdselect::query::AdmissionConfig {
        max_concurrent: 1,
        max_queue: 0,
        queue_timeout: Duration::from_millis(5),
    }));

    // Two statements pass the gate; one hits it while the only slot is
    // held (by a concurrent query, here simulated from outside).
    engine.run("SHOW STATS").unwrap();
    let ctl = Arc::clone(engine.admission().expect("admission installed"));
    let held = ctl.admit().expect("external slot");
    engine
        .run("SHOW STATS")
        .expect_err("saturated gate must shed");
    drop(held);
    engine.run("SHOW STATS").unwrap();

    let snap = obs.snapshot();
    // The externally held slot is not an engine statement: 3 statements =
    // 2 admitted + 1 shed, and admitted + shed covers every attempt.
    assert_eq!(snap.counter("query", "admission_admitted"), Some(2));
    assert_eq!(snap.counter("query", "admission_shed"), Some(1));
    assert_eq!(snap.counter("query", "admission_queued"), None);
    let waits = snap
        .histogram("query", "queue_wait_seconds")
        .expect("queue wait histogram");
    assert_eq!(waits.count, 2, "every admitted statement records its wait");
}
