//! Seeded query-layer chaos suite: deterministic fault injection + a mixed
//! deadline/cancellation/budget/admission schedule over the full query
//! pipeline, with every outcome accounted for.
//!
//! The properties pinned here (per seed — CI runs `CHAOS_SEED` = 17, 42
//! and 99):
//!
//! 1. **No panics.** Every statement returns `Ok` or a *typed*
//!    [`QueryError`]; the process never aborts (the test itself is the
//!    witness).
//! 2. **No silent corruption.** Any select that comes back `Ok` and not
//!    `degraded` under chaos is bit-identical to the clean, fault-free
//!    run of the same statement; degraded tables are explicitly flagged.
//! 3. **Accounting.** The `query/*` counters reconcile exactly with the
//!    outcomes observed by the caller: cancelled/deadline/budget errors,
//!    degraded executions, admission admitted+shed totals, and retries
//!    never exceeding injected faults.
//! 4. **State integrity.** Mutations either land fully or not at all: the
//!    final worker count equals the initial count plus the successful
//!    inserts.
//!
//! A machine-readable report lands in `results/CHAOS_7.json` (hand-rolled
//! JSON: no extra dependencies) so CI archives what each seed exercised.

use crowdselect::obs::{Obs, Registry, Tracer};
use crowdselect::query::{
    AdmissionConfig, AdmissionError, CancelToken, QueryContext, QueryEngine, QueryError,
    QueryOutput, RetryPolicy, WorkerTable,
};
use crowdselect::sim::QueryFaultPlan;
use std::sync::Arc;
use std::time::Duration;

const BACKENDS: &[&str] = &["tdpm", "vsm", "drm", "tspm"];

const SELECT_TEXTS: &[&str] = &[
    "btree page split index",
    "gaussian posterior variance",
    "buffer pool write amplification",
    "variational inference prior",
    "btree zzz unknown words",
];

fn chaos_seed() -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => s.parse().expect("CHAOS_SEED must be a u64"),
        Err(_) => 17,
    }
}

/// SplitMix64 — the suite's only randomness, fully determined by the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Same two-specialist fixture as the query crate's oracle tests.
fn seeded_engine() -> QueryEngine {
    let mut e = QueryEngine::new();
    e.run("INSERT WORKER 'dba'").unwrap();
    e.run("INSERT WORKER 'stat'").unwrap();
    e.run("INSERT WORKER 'generalist'").unwrap();
    let tasks = [
        ("btree page split index buffer disk", 0, 1),
        ("gaussian prior posterior likelihood variance", 1, 0),
        ("btree range scan clustered index", 0, 2),
        ("variational bayes gaussian inference", 1, 2),
        ("btree write amplification buffer pool", 0, 1),
        ("posterior variance of a gaussian", 1, 0),
    ];
    for (i, (text, good, meh)) in tasks.iter().enumerate() {
        e.run(&format!("INSERT TASK '{text}'")).unwrap();
        e.run(&format!("ASSIGN WORKER {good} TO TASK {i}")).unwrap();
        e.run(&format!("ASSIGN WORKER {meh} TO TASK {i}")).unwrap();
        e.run(&format!("FEEDBACK WORKER {good} ON TASK {i} SCORE 4"))
            .unwrap();
        e.run(&format!("FEEDBACK WORKER {meh} ON TASK {i} SCORE 2"))
            .unwrap();
    }
    e.run("TRAIN MODEL WITH 2 CATEGORIES").unwrap();
    e
}

fn select_statements() -> Vec<String> {
    let mut stmts = Vec::new();
    for backend in BACKENDS {
        for (i, text) in SELECT_TEXTS.iter().enumerate() {
            let k = 1 + i % 3;
            stmts.push(format!(
                "SELECT WORKERS FOR TASK '{text}' LIMIT {k} USING {backend}"
            ));
        }
    }
    stmts
}

fn assert_tables_bit_equal(chaos: &WorkerTable, clean: &WorkerTable, stmt: &str) {
    assert_eq!(chaos.len(), clean.len(), "{stmt}: row count");
    for (c, b) in chaos.iter().zip(clean) {
        assert_eq!(c.worker, b.worker, "{stmt}: worker order");
        assert_eq!(
            c.score.to_bits(),
            b.score.to_bits(),
            "{stmt}: score bits for {}",
            c.worker
        );
    }
}

/// The per-statement context schedule: a deterministic mix of unbounded,
/// generously-guarded, zero-budget (both policies), expired-deadline
/// (both policies) and pre-cancelled contexts.
enum Variant {
    Clean(QueryContext),
    Degrading(QueryContext),
    Fatal(QueryContext, &'static str),
}

fn draw_variant(rng: &mut Rng) -> Variant {
    match rng.next() % 8 {
        0..=2 => Variant::Clean(QueryContext::unbounded()),
        3 | 4 => Variant::Clean(
            QueryContext::unbounded()
                .with_deadline(Duration::from_secs(3600))
                .with_cancellation(CancelToken::new())
                .with_row_budget(1 << 40),
        ),
        5 => Variant::Degrading(
            QueryContext::unbounded()
                .with_row_budget(0)
                .degrade_to_partial(),
        ),
        6 => Variant::Fatal(
            QueryContext::unbounded().with_deadline(Duration::ZERO),
            "deadline",
        ),
        _ => {
            let token = CancelToken::new();
            token.cancel();
            // Cancellation out-ranks the partial policy: still a hard stop.
            Variant::Fatal(
                QueryContext::unbounded()
                    .with_cancellation(token)
                    .degrade_to_partial(),
                "cancelled",
            )
        }
    }
}

#[derive(Default)]
struct Tally {
    ok: u64,
    degraded: u64,
    cancelled: u64,
    deadline: u64,
    budget: u64,
    admission: u64,
    retries_exhausted: u64,
}

#[test]
fn seeded_chaos_run_is_typed_accounted_and_uncorrupted() {
    let seed = chaos_seed();
    let stmts = select_statements();

    // Clean baseline: same statements, no faults, no context.
    let mut clean = seeded_engine();
    let baseline: Vec<WorkerTable> = stmts
        .iter()
        .map(|s| {
            let QueryOutput::Workers(t) = clean.run(s).unwrap() else {
                panic!("expected workers for {s}");
            };
            t
        })
        .collect();

    // Chaos engine: same data, armed fault plan, fast retries, admission,
    // shared metrics registry.
    let metrics = Arc::new(Registry::new());
    let mut e = seeded_engine();
    e.set_obs(Obs::new(metrics.clone(), Tracer::noop()));
    e.set_retry_policy(RetryPolicy {
        max_retries: 3,
        base_backoff: Duration::from_micros(20),
        max_backoff: Duration::from_micros(100),
    });
    e.set_fault_injection(Some(
        QueryFaultPlan::new(seed)
            .with_transient_error(0.25)
            .with_latency(0.10)
            .with_partial_read(0.10)
            .with_latency_delay(Duration::from_micros(50)),
    ));
    e.set_admission(Some(AdmissionConfig {
        max_concurrent: 1,
        max_queue: 0,
        queue_timeout: Duration::from_millis(5),
    }));

    let mut rng = Rng(seed ^ 0xc0ffee);
    let mut tally = Tally::default();
    let mut attempts: u64 = 0;

    // ---- Phase A: selects (database frozen, bit-identity checkable) ----
    for (i, stmt) in stmts.iter().enumerate() {
        // Every fourth statement runs against a saturated admission gate.
        let saturated = i % 4 == 3;
        let held = if saturated {
            Some(
                Arc::clone(e.admission().expect("admission installed"))
                    .admit()
                    .expect("external slot"),
            )
        } else {
            None
        };
        attempts += 1;
        let variant = draw_variant(&mut rng);
        let (ctx, expect) = match &variant {
            Variant::Clean(c) => (c, "clean"),
            Variant::Degrading(c) => (c, "degrading"),
            Variant::Fatal(c, kind) => (c, *kind),
        };
        let outcome = e.run_with(stmt, ctx);
        drop(held);
        match outcome {
            Ok(QueryOutput::Workers(table)) => {
                assert!(!saturated, "{stmt}: a saturated gate must refuse admission");
                if table.degraded {
                    assert_eq!(expect, "degrading", "{stmt}: unexpected degradation");
                    tally.degraded += 1;
                } else {
                    // Chaos may retry or stall this select, but if it
                    // reports success the bits must be the clean bits.
                    assert_tables_bit_equal(&table, &baseline[i], stmt);
                    tally.ok += 1;
                }
            }
            Ok(other) => panic!("{stmt}: unexpected output {other:?}"),
            Err(QueryError::Admission(a)) => {
                assert!(saturated, "{stmt}: admission refusal without load: {a}");
                assert!(matches!(
                    a,
                    AdmissionError::Shed { .. } | AdmissionError::QueueTimeout { .. }
                ));
                tally.admission += 1;
            }
            Err(QueryError::Cancelled) => {
                assert_eq!(expect, "cancelled", "{stmt}");
                tally.cancelled += 1;
            }
            Err(QueryError::DeadlineExceeded) => {
                assert_eq!(expect, "deadline", "{stmt}");
                tally.deadline += 1;
            }
            Err(QueryError::BudgetExhausted) => {
                // Only the error-policy variants may surface this; the
                // zero-budget variant runs under the partial policy.
                panic!("{stmt}: zero-budget runs degrade, they do not error");
            }
            Err(QueryError::RetriesExhausted { attempts, last }) => {
                assert!(
                    attempts >= 2,
                    "{stmt}: exhausted after {attempts} attempt(s)"
                );
                assert!(last.contains("injected"), "{stmt}: {last}");
                tally.retries_exhausted += 1;
            }
            Err(other) => panic!("{stmt}: untyped/unexpected error {other:?}"),
        }
    }

    // ---- Phase B: mutations under chaos (atomicity) --------------------
    let workers_before = e.db().num_workers() as u64;
    let mut landed: u64 = 0;
    for i in 0..12u32 {
        attempts += 1;
        match e.run(&format!("INSERT WORKER 'chaos-{i}'")) {
            Ok(QueryOutput::WorkerInserted(_)) => landed += 1,
            Ok(other) => panic!("insert: unexpected output {other:?}"),
            Err(QueryError::RetriesExhausted { last, .. }) => {
                assert!(last.contains("injected"), "{last}");
                tally.retries_exhausted += 1;
            }
            Err(other) => panic!("insert: untyped/unexpected error {other:?}"),
        }
    }
    assert_eq!(
        e.db().num_workers() as u64,
        workers_before + landed,
        "mutations must land fully or not at all"
    );

    // ---- Accounting reconciliation --------------------------------------
    let snap = metrics.snapshot();
    let counter = |name: &str| snap.counter("query", name).unwrap_or(0);
    assert_eq!(counter("cancelled"), tally.cancelled);
    assert_eq!(counter("deadline_exceeded"), tally.deadline);
    assert_eq!(counter("budget_exhausted"), tally.budget);
    assert_eq!(counter("degraded"), tally.degraded);
    assert_eq!(
        counter("admission_admitted") + counter("admission_shed"),
        attempts,
        "every admit attempt is either admitted or shed"
    );
    assert_eq!(counter("admission_shed"), tally.admission);
    assert!(
        counter("retries") <= counter("faults_injected"),
        "every retry is caused by an injected fault here ({} retries, {} faults)",
        counter("retries"),
        counter("faults_injected")
    );
    assert!(
        tally.retries_exhausted == 0 || counter("faults_injected") > 0,
        "exhaustion without injection"
    );
    // The schedule is seeded so at least the guaranteed variants fired.
    assert!(tally.ok > 0, "no clean select survived — schedule broken");

    write_report(seed, &stmts, &tally, attempts, &snap);
}

/// Hand-rolled JSON report (keys sorted, no float formatting surprises) —
/// the repo deliberately avoids a JSON dependency in the test crate.
fn write_report(
    seed: u64,
    stmts: &[String],
    t: &Tally,
    attempts: u64,
    snap: &crowdselect::obs::MetricsSnapshot,
) {
    let counter = |name: &str| snap.counter("query", name).unwrap_or(0);
    let json = format!(
        "{{\n  \"suite\": \"query-layer chaos\",\n  \"seed\": {seed},\n  \
         \"statements\": {},\n  \"admit_attempts\": {attempts},\n  \"outcomes\": {{\n    \
         \"ok_bit_identical\": {},\n    \"degraded\": {},\n    \"cancelled\": {},\n    \
         \"deadline_exceeded\": {},\n    \"budget_exhausted\": {},\n    \
         \"admission_refused\": {},\n    \"retries_exhausted\": {}\n  }},\n  \"metrics\": {{\n    \
         \"admission_admitted\": {},\n    \"admission_shed\": {},\n    \"degraded\": {},\n    \
         \"retries\": {},\n    \"faults_injected\": {}\n  }}\n}}\n",
        stmts.len() + 12,
        t.ok,
        t.degraded,
        t.cancelled,
        t.deadline,
        t.budget,
        t.admission,
        t.retries_exhausted,
        counter("admission_admitted"),
        counter("admission_shed"),
        counter("degraded"),
        counter("retries"),
        counter("faults_injected"),
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join("CHAOS_7.json"), json);
    }
}
