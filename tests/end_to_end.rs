//! Cross-crate integration: generated platform → database → selectors →
//! evaluation → persistence, all through the public facade.

use crowdselect::baselines::{CrowdSelector, TdpmSelector, VsmSelector};
use crowdselect::eval::protocol::EvalProtocol;
use crowdselect::prelude::*;
use crowdselect::store::snapshot::Snapshot;

fn small_quora() -> crowdselect::sim::GeneratedPlatform {
    PlatformGenerator::new(SimConfig::quora(0.04, 31)).generate()
}

#[test]
fn generated_platform_round_trips_through_snapshot() {
    let platform = small_quora();
    let snap = Snapshot::capture(&platform.db);
    let json = snap.to_json().unwrap();
    let restored = Snapshot::from_json(&json).unwrap().restore();
    assert_eq!(restored.num_tasks(), platform.db.num_tasks());
    assert_eq!(restored.num_workers(), platform.db.num_workers());
    assert_eq!(restored.num_resolved(), platform.db.num_resolved());

    // The restored database trains the same-shaped model.
    let cfg = TdpmConfig {
        num_categories: 4,
        max_em_iters: 5,
        seed: 1,
        ..TdpmConfig::default()
    };
    let model = TdpmTrainer::new(cfg).fit(&restored).unwrap();
    assert_eq!(model.worker_ids().len(), restored.num_workers());
}

#[test]
fn trained_selector_beats_reversed_self() {
    // Sanity for the whole chain: TDPM's ranking must carry signal, i.e.
    // score strictly better than the same ranking reversed.
    let platform = small_quora();
    let db = &platform.db;
    let tdpm = TdpmSelector::fit(db, 4, 3).unwrap();
    let group = WorkerGroup::extract(db, 1);
    let protocol = EvalProtocol::new(120, 5);
    let questions = protocol.test_questions(db, &group);
    assert!(questions.len() >= 20, "enough test questions generated");

    struct Reversed<'a>(&'a TdpmSelector);
    impl CrowdSelector for Reversed<'_> {
        fn name(&self) -> &'static str {
            "REV"
        }
        fn rank(
            &self,
            task: &BagOfWords,
            candidates: &[WorkerId],
        ) -> Vec<crowdselect::model::selection::RankedWorker> {
            let mut r = self.0.rank(task, candidates);
            r.reverse();
            r
        }
    }

    let fwd = protocol.evaluate(&tdpm, &questions).precision();
    let rev = protocol.evaluate(&Reversed(&tdpm), &questions).precision();
    assert!(
        fwd > rev + 0.1,
        "forward {fwd:.3} must clearly beat reversed {rev:.3}"
    );
    assert!(fwd > 0.5, "forward precision above coin flip: {fwd:.3}");
}

#[test]
fn vsm_profile_matches_store_history() {
    let platform = small_quora();
    let db = &platform.db;
    let vsm = VsmSelector::fit(db);
    for w in db.worker_ids().take(20) {
        let profile = vsm.profile(w).unwrap();
        assert_eq!(
            profile.total_tokens(),
            db.worker_history_bow(w).total_tokens()
        );
    }
}

#[test]
fn manager_serves_generated_platform_online() {
    let platform = PlatformGenerator::new(SimConfig::stack_overflow(0.03, 17)).generate();
    let manager = CrowdManager::new(
        SharedCrowdDb::new(platform.db),
        ManagerConfig {
            top_k: 3,
            tdpm: TdpmConfig {
                num_categories: 4,
                max_em_iters: 5,
                seed: 2,
                ..TdpmConfig::default()
            },
            retrain_every: None,
        },
    );
    let report = manager.train().unwrap();
    assert!(report.iterations >= 1);

    let workers: Vec<WorkerId> = manager.db().read().worker_ids().collect();
    for &w in workers.iter().take(10) {
        manager.set_online(w);
    }
    let (task, selected) = manager.submit_task("term0001 term0002 term0003").unwrap();
    assert_eq!(selected.len(), 3);
    for r in &selected {
        assert!(manager.db().read().is_assigned(r.worker, task));
        manager.record_feedback(r.worker, task, 1.0).unwrap();
    }
}

#[test]
fn yahoo_feedback_is_bounded_and_best_marked() {
    let platform = PlatformGenerator::new(SimConfig::yahoo(0.03, 23)).generate();
    for rt in platform.db.resolved_tasks() {
        let max = rt.scores.iter().map(|&(_, s)| s).fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        for &(_, s) in &rt.scores {
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
